// Figure 12 -- feature importance of the random-forest estimator in the
// experiment where the cnvW1A1 blocks are the test set.
//
// Paper: the sum of importances is 1; the relative ("Additional") features
// again contribute the most to the decision.

#include "bench_common.hpp"

int main() {
  using namespace mf;
  bench::banner("Figure 12: RF feature importance (cnvW1A1 as test set)",
                "relative features dominate the forest's decisions; the "
                "importance values sum to 1");

  const Device dev = xc7z020_model();
  const GroundTruth dataset = bench::dataset_truth(dev);
  const GroundTruth cnv = bench::cnv_truth(dev, /*drop_tiny=*/true);

  Rng rng(7);
  const Dataset train = balance_by_target(
      make_dataset(FeatureSet::All, dataset.samples), bench::kBinWidth,
      bench::kBinCap, rng);
  CfEstimator rf(EstimatorKind::RandomForest, FeatureSet::All);
  rf.train(train);

  const std::vector<std::string> names = feature_names(FeatureSet::All);
  const std::vector<double> importance = rf.feature_importance();
  std::vector<std::pair<std::string, double>> bars;
  double total = 0.0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    bars.emplace_back(names[i], importance[i]);
    total += importance[i];
  }
  std::fputs(bar_chart(bars, 40).c_str(), stdout);
  std::printf("\nimportance sum: %.3f [must be 1]\n", total);

  double relative = 0.0;
  for (std::size_t i = 8; i < importance.size(); ++i) relative += importance[i];
  std::printf("relative-features share: %.2f [paper: dominant]\n", relative);

  const Dataset test = make_dataset(FeatureSet::All, cnv.samples);
  const std::vector<double> pred = rf.predict_rows(test.x);
  std::printf(
      "\nRF on the %zu cnvW1A1 blocks: median abs error %.2f%%, mean "
      "%.2f%% [paper context: NN reaches 9.5%% median on these blocks]\n",
      test.size(), 100.0 * median_relative_error(pred, test.y),
      100.0 * mean_relative_error(pred, test.y));
  return 0;
}
