// Figure 5 -- placed-and-routed cnvW1A1 on the xc7z020:
//   a) the flat commercial tool fully places the design (99.98% of slices);
//   b) RW with a constant CF (the per-design maximum, paper: 1.68) leaves
//      68 of 175 blocks unplaced;
//   c) RW with per-block minimal CFs leaves 52 unplaced.

#include "bench_common.hpp"
#include "flow/monolithic.hpp"
#include "flow/rw_flow.hpp"

namespace {

using namespace mf;

/// Coarse ASCII occupancy map of the stitched placement.
void print_map(const Device& dev, const StitchProblem& problem,
               const StitchResult& result) {
  const int cell_cols = 4;  // device columns per character
  const int cell_rows = 10;
  const int w = (dev.num_columns() + cell_cols - 1) / cell_cols;
  const int h = (dev.rows() + cell_rows - 1) / cell_rows;
  std::vector<int> density(static_cast<std::size_t>(w * h), 0);
  for (std::size_t i = 0; i < result.positions.size(); ++i) {
    const BlockPlacement& p = result.positions[i];
    if (!p.placed()) continue;
    const Macro& macro = problem.macros[static_cast<std::size_t>(
        problem.instances[i].macro)];
    for (int c = p.col; c < p.col + macro.footprint.width(); ++c) {
      for (int r = p.row; r < p.row + macro.footprint.height; ++r) {
        ++density[static_cast<std::size_t>((r / cell_rows) * w +
                                           (c / cell_cols))];
      }
    }
  }
  const int full = cell_cols * cell_rows;
  for (int r = 0; r < h; ++r) {
    for (int c = 0; c < w; ++c) {
      const int d = density[static_cast<std::size_t>(r * w + c)];
      std::putchar(d == 0 ? '.' : (d < full / 2 ? '+' : '#'));
    }
    std::putchar('\n');
  }
}

}  // namespace

int main() {
  using namespace mf;
  bench::banner("Figure 5: full-device placement comparison on the xc7z020",
                "a) flat tool 99.98% placed; b) RW const CF=1.68: 68 of 175 "
                "blocks unplaced; c) RW minimal CFs: 52 unplaced");

  const Device dev = xc7z020_model();
  const CnvDesign design = build_cnv_w1a1();

  // (a) Flat baseline.
  Timer t_flat;
  const MonolithicResult flat = place_monolithic(design, dev);
  std::printf("a) flat tool: %s, slice utilization %.2f%% (%.1fs) "
              "[paper: 99.98%%]\n\n",
              flat.feasible ? "fully placed" : flat.fail_reason.c_str(),
              100.0 * flat.utilization, t_flat.seconds());

  RwFlowOptions opts;
  opts.compute_timing = false;

  // (c) Minimal CFs first (also yields the per-design max CF for (b)).
  Timer t_min;
  CfPolicy min_policy;
  min_policy.mode = CfPolicy::Mode::MinSearch;
  const RwFlowResult min_run = run_rw_flow(design, dev, min_policy, opts);
  double max_cf = 0.0;
  for (const ImplementedBlock& blk : min_run.blocks) {
    if (blk.ok()) max_cf = std::max(max_cf, blk.macro.cf);
  }

  // (b) Constant CF at the design maximum (the paper's 1.68 analogue: the
  // smallest constant for which every block still implements).
  Timer t_const;
  CfPolicy const_policy;
  const_policy.constant_cf = max_cf;
  const RwFlowResult const_run = run_rw_flow(design, dev, const_policy, opts);

  Table table({"flow", "CF policy", "unplaced blocks", "placed", "coverage",
               "stitch wirelength", "seconds"});
  table.row()
      .cell("RW constant")
      .cell("CF=" + fmt(max_cf, 2))
      .cell(const_run.stitch.unplaced)
      .cell(static_cast<int>(const_run.problem.instances.size()) -
            const_run.stitch.unplaced)
      .cell(const_run.stitch.coverage, 3)
      .cell(const_run.stitch.wirelength, 0)
      .cell(t_const.seconds(), 1);
  table.row()
      .cell("RW minimal")
      .cell("per-block min")
      .cell(min_run.stitch.unplaced)
      .cell(static_cast<int>(min_run.problem.instances.size()) -
            min_run.stitch.unplaced)
      .cell(min_run.stitch.coverage, 3)
      .cell(min_run.stitch.wirelength, 0)
      .cell(t_min.seconds(), 1);
  table.print();

  const int delta = const_run.stitch.unplaced - min_run.stitch.unplaced;
  std::printf(
      "\nminimal CFs place %d more blocks than the constant CF "
      "[paper: 16 more: 68 -> 52], i.e. %.0f%% more placed blocks "
      "[paper abstract: 15%%]\n",
      delta,
      100.0 * delta /
          std::max(1, static_cast<int>(const_run.problem.instances.size()) -
                          const_run.stitch.unplaced));

  std::printf("\nb) constant CF=%.2f stitched map ('.'=free '+'=partial "
              "'#'=dense):\n", max_cf);
  print_map(dev, const_run.problem, const_run.stitch);
  std::printf("\nc) minimal-CF stitched map:\n");
  print_map(dev, min_run.problem, min_run.stitch);
  return 0;
}
