// Section I motivation -- recompilation cost under design changes.
//
// The paper motivates pre-implemented blocks with the weakness of vendor
// incremental flows: "a 2x speed-up if at least 95% of the design is
// reused", while NN architecture changes typically touch much more. This
// bench measures, on this substrate, how the cached block flow's
// recompilation cost scales with the fraction of unique blocks changed,
// against re-running the flat full-device baseline every time.

#include <algorithm>

#include "bench_common.hpp"
#include "flow/monolithic.hpp"
#include "flow/rw_flow.hpp"
#include "nn/finn_blocks.hpp"

int main() {
  using namespace mf;
  bench::banner("Incremental recompilation cost vs fraction of design changed",
                "Section I: vendor incremental flows need >=95% reuse for a "
                "2x gain; block caching keeps paying at much larger changes");

  const Device dev = xc7z020_model();
  const CnvDesign base = build_cnv_w1a1();

  // Measure block *implementation* cost; the stitch re-runs identically in
  // every iteration for every flow, so it is reported once, separately --
  // on real tools the per-block place&route dominates by orders of
  // magnitude, which is the regime the paper targets.
  RwFlowOptions opts;
  opts.compute_timing = false;
  opts.run_stitch = false;
  CfPolicy policy;
  policy.constant_cf = 1.3;

  // Flat baseline: every iteration re-places the whole design.
  Timer t_flat;
  place_monolithic(base, dev);
  const double flat_seconds = t_flat.seconds();
  std::printf("flat full-device compile: %.2fs per iteration (always)\n\n",
              flat_seconds);

  // Warm the cache once.
  ModuleCache cache;
  Timer t_cold;
  cache.run(base, dev, policy, opts);
  const double cold_seconds = t_cold.seconds();

  Table table({"blocks changed", "% of design", "block compile s",
               "tool runs", "vs flat", "vs cold block flow"});
  table.row()
      .cell("74 (cold)")
      .cell("100%")
      .cell(cold_seconds, 3)
      .cell("-")
      .cell(fmt(flat_seconds / cold_seconds, 2) + "x")
      .cell("1.00x");

  for (int changed : {1, 4, 8, 16, 30}) {
    // Replace `changed` unique blocks with re-parameterised versions.
    CnvDesign design = base;
    Rng rng(1000 + static_cast<std::uint64_t>(changed));
    for (int k = 0; k < changed; ++k) {
      const int idx =
          static_cast<int>((static_cast<std::size_t>(k) * 7) % design.unique_modules.size());
      Module replacement = gen_threshold(
          {6 + (k % 8), 16}, rng);
      replacement.name = design.unique_modules[static_cast<std::size_t>(idx)]
                             .name +
                         "_v" + std::to_string(changed);
      design.unique_modules[static_cast<std::size_t>(idx)] = replacement;
    }
    Timer timer;
    const RwFlowResult r = cache.run(design, dev, policy, opts);
    const double seconds = std::max(timer.seconds(), 1e-4);
    table.row()
        .cell(changed)
        .cell(fmt(100.0 * changed / 74.0, 0) + "%")
        .cell(seconds, 3)
        .cell(r.total_tool_runs)
        .cell(fmt(flat_seconds / seconds, 2) + "x")
        .cell(fmt(cold_seconds / seconds, 2) + "x");
  }
  table.print();

  // The per-iteration stitch cost, identical for every approach.
  RwFlowOptions stitched = opts;
  stitched.run_stitch = true;
  Timer t_stitch;
  cache.run(base, dev, policy, stitched);
  std::printf("\n(+ stitch per iteration: %.2fs, identical for every "
              "block-flow variant)\n", t_stitch.seconds());
  std::printf(
      "\nshape check (paper, Section I): the cached flow keeps a large\n"
      "block-compile speed-up even when 20-40%% of the blocks change,\n"
      "where a vendor incremental flow has already fallen back to full\n"
      "recompilation. On real tools per-block place&route dominates, so\n"
      "these ratios translate directly into end-to-end gains.\n");
  return 0;
}
