// Serving-daemon load bench: coalesced batching throughput, tail latency,
// canary rollback, and chaos recovery under a real Unix-domain socket.
//
// Four claims are measured and *checked*, not just timed (MF_CHECK aborts
// on violation; the `bench_serving_load_quick` ctest entry relies on that):
//
//   1. Coalescing pays: many concurrent closed-loop clients sustain >= 5x
//      the QPS of one request-at-a-time client against the same daemon.
//      Each lone request must sit out the full coalesce window alone, while
//      concurrent clients share windows -- the speedup is amortisation, not
//      multicore (the gate holds on a 1-core container).
//   2. Batching is invisible in the bytes: every `OK <cf>` response parses
//      back (shortest round-trip format) to the bit-exact double the
//      bundle's estimator produces for that row in isolation, no matter
//      which rows shared a flush. Tail latency stays bounded: server-side
//      ESTIMATE p99 <= coalesce budget + scheduling slack (measured with a
//      log2 histogram, so the threshold allows its 2x bucket rounding).
//   3. A poisoned newer bundle version rolls back deterministically: with a
//      canary configured, a corrupt v2 trips the load breaker after
//      fail_threshold scans, traffic never leaves v1, and not a single ERR
//      response reaches any client before, during, or after the rollback.
//   4. A SIGKILLed daemon under `--supervised`-equivalent supervision costs
//      clients only latency: 8 closed-loop ServeClients under seeded
//      network chaos ride out a daemon kill with zero wrong answers and
//      zero gave-up requests, and the p99 of requests started after the
//      kill stays under a 10 s recovery bound.
//
// Every client in every phase is a ServeClient (src/srv/client.hpp): the
// retry/trace machinery the CLI uses is the machinery being measured.
//
// Results land in BENCH_SERVING.json. Plain main, like bench_serve: the
// daemon lifecycle does not fit the BM_ harness. The supervised phase
// re-executes this binary as the daemon child via the --serve-child hook
// (answered before anything else in main).

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "serve/registry.hpp"
#include "srv/client.hpp"
#include "srv/server.hpp"
#include "srv/supervised.hpp"

#include "bench_common.hpp"

namespace {

using namespace mf;
namespace fs = std::filesystem;

ModelBundle make_bundle(const std::string& name) {
  Dataset data;
  data.feature_names = feature_names(FeatureSet::Classical);
  Rng rng(7);
  for (std::size_t i = 0; i < 80; ++i) {
    std::vector<double> row(data.feature_names.size());
    double target = 0.4;
    for (std::size_t j = 0; j < row.size(); ++j) {
      row[j] = j % 2 == 0 ? rng.uniform(0.0, 4000.0) : rng.uniform(0.0, 1.0);
      target += row[j] * (j % 3 == 0 ? 2.5e-4 : 0.05);
    }
    data.add(std::move(row), target + rng.uniform(0.0, 0.2),
             "s" + std::to_string(i));
  }
  ModelBundle bundle;
  bundle.name = name;
  bundle.provenance.seed = 3;
  bundle.provenance.dataset_rows = 80;
  bundle.estimator =
      CfEstimator(EstimatorKind::LinearRegression, FeatureSet::Classical);
  bundle.estimator.train(data);
  return bundle;
}

std::vector<std::vector<double>> make_rows(std::size_t n, std::uint64_t seed) {
  const std::size_t dim = feature_names(FeatureSet::Classical).size();
  Rng rng(seed);
  std::vector<std::vector<double>> rows(n);
  for (std::vector<double>& row : rows) {
    row.resize(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      row[j] = j % 2 == 0 ? rng.uniform(0.0, 5000.0) : rng.uniform(0.0, 1.0);
    }
  }
  return rows;
}

/// Fault-free resilient-client options (phases 1-3: the transport is
/// healthy, the client machinery is just the normal access path).
ClientOptions plain_client_options(const std::string& socket_path,
                                   const std::string& name) {
  ClientOptions options;
  options.socket_path = socket_path;
  options.client_name = name;
  options.connect_deadline_s = 10.0;
  options.request_deadline_s = 60.0;
  return options;
}

double quantile_99(std::vector<double>& values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t index =
      std::min(values.size() - 1, (values.size() * 99) / 100);
  return values[index];
}

}  // namespace

int main(int argc, char** argv) {
  // Daemon-child mode first: the supervised phase re-executes this binary.
  if (const std::optional<int> code = maybe_run_serve_child(argc, argv)) {
    return *code;
  }
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  bench::banner("serving daemon: coalesced batching, tail latency, canary "
                "rollback, chaos recovery",
                "estimator serving for the CF predictions of Section V");

  const std::string dir =
      (fs::temp_directory_path() /
       ("mf_bench_srv_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string socket_path = dir + "/serve.sock";

  ModelRegistry registry(dir);
  const ModelBundle v1 = make_bundle("m");
  MF_CHECK(registry.put(v1).has_value());

  constexpr double kCoalesceUs = 1000.0;
  CancelToken cancel;
  ServerOptions options;
  options.registry_dir = dir;
  options.socket_path = socket_path;
  options.coalesce.coalesce_us = kCoalesceUs;
  options.coalesce.max_batch = 128;
  options.coalesce.queue_capacity = 512;
  options.canary.percent = 100;
  options.canary.fail_threshold = 3;
  options.reload_poll_seconds = 0.02;
  options.cancel = &cancel;
  EstimatorServer server(options);
  std::thread daemon([&server] { MF_CHECK(server.run() == 130); });

  // -- 1. closed-loop baseline: one request at a time ----------------------
  // Every lone request waits out the full coalesce window by itself, so
  // this is the price of not batching.
  const std::size_t base_n = quick ? 300 : 2000;
  const auto base_rows = make_rows(base_n, 11);
  double base_qps = 0.0;
  {
    ServeClient client(plain_client_options(socket_path, "base"));
    Timer timer;
    for (std::size_t i = 0; i < base_n; ++i) {
      std::string error;
      const std::optional<double> cf =
          client.estimate("base", "m", base_rows[i], &error);
      MF_CHECK_MSG(cf.has_value(), "baseline request failed: " + error);
      MF_CHECK(*cf == v1.estimator.predict_row(base_rows[i]));
    }
    base_qps = static_cast<double>(base_n) / timer.seconds();
  }
  std::printf("closed-loop baseline: %zu requests, %.0f QPS "
              "(coalesce budget %.0f us paid per request)\n",
              base_n, base_qps, kCoalesceUs);

  // -- 2. concurrent load: windows amortise across clients -----------------
  const int clients = quick ? 16 : 32;
  const std::size_t per_client = quick ? 300 : 1500;
  std::atomic<std::uint64_t> identity_misses{0};
  std::atomic<std::uint64_t> errors{0};
  Timer load_timer;
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        const auto rows = make_rows(per_client, 100 + c);
        ServeClient client(plain_client_options(
            socket_path, "tenant" + std::to_string(c)));
        const std::string name = "tenant" + std::to_string(c);
        for (std::size_t i = 0; i < per_client; ++i) {
          std::string error;
          const std::optional<double> cf =
              client.estimate(name, "m", rows[i], &error);
          if (!cf.has_value()) {
            ++errors;
          } else if (*cf != v1.estimator.predict_row(rows[i])) {
            ++identity_misses;
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  const double load_s = load_timer.seconds();
  const double load_qps =
      static_cast<double>(clients) * static_cast<double>(per_client) / load_s;
  const double speedup = load_qps / base_qps;
  std::printf("coalesced load: %d clients x %zu requests -> %.0f QPS, "
              "%.1fx the baseline (acceptance target >= 5x)\n",
              clients, per_client, load_qps, speedup);
  MF_CHECK_MSG(errors.load() == 0, "load phase saw ERR responses");
  MF_CHECK_MSG(identity_misses.load() == 0,
               "batched responses must be bit-identical to solo prediction");
  MF_CHECK_MSG(speedup >= 5.0,
               "coalesced batching must sustain >= 5x closed-loop QPS");

  // Server-side ESTIMATE p99 against the latency budget. The log2
  // histogram reports bucket upper bounds (within 2x), so the gate allows
  // budget + 50 ms scheduling slack, rounded by one bucket.
  const std::uint64_t p99_us = server.stats().request_ns.quantile_max(0.99) / 1000;
  const std::uint64_t p99_limit_us =
      2 * (static_cast<std::uint64_t>(kCoalesceUs) + 50000);
  std::printf("server-side ESTIMATE p99 <= %lu us (budget %.0f us, "
              "gate %lu us)\n",
              static_cast<unsigned long>(p99_us), kCoalesceUs,
              static_cast<unsigned long>(p99_limit_us));
  MF_CHECK_MSG(p99_us <= p99_limit_us,
               "ESTIMATE p99 exceeded the coalesce budget + slack");

  // -- 3. deterministic canary rollback ------------------------------------
  // A corrupt v2 appears while traffic flows. The canary load breaker must
  // condemn it after fail_threshold scans; every response before, during,
  // and after stays a v1 OK.
  {
    std::ofstream poison(dir + "/m-v2.mfb", std::ios::binary);
    poison << "macroflow-model-bundle 1\nnot a bundle at all\n";
  }
  std::uint64_t rollback_errors = 0;
  {
    ServeClient client(plain_client_options(socket_path, "rollback"));
    const auto rows = make_rows(quick ? 200 : 1000, 77);
    std::size_t i = 0;
    Timer rollback_timer;
    while (server.canary_status("m").rollbacks == 0) {
      MF_CHECK_MSG(rollback_timer.seconds() < 30.0,
                   "canary rollback never happened");
      std::string error;
      const std::optional<double> cf =
          client.estimate("t", "m", rows[i % rows.size()], &error);
      if (!cf.has_value() ||
          *cf != v1.estimator.predict_row(rows[i % rows.size()])) {
        ++rollback_errors;
      }
      ++i;
    }
    // Post-rollback: still v1, still zero errors.
    for (std::size_t j = 0; j < 50; ++j) {
      std::string error;
      const std::optional<double> cf =
          client.estimate("t", "m", rows[j], &error);
      if (!cf.has_value() || *cf != v1.estimator.predict_row(rows[j])) {
        ++rollback_errors;
      }
    }
  }
  const CanaryStatus canary = server.canary_status("m");
  std::printf("canary rollback: stable=v%d canary=v%d rollbacks=%lu, "
              "client-visible errors %lu (must be 0)\n",
              canary.stable_version, canary.canary_version,
              static_cast<unsigned long>(canary.rollbacks),
              static_cast<unsigned long>(rollback_errors));
  MF_CHECK_MSG(canary.rollbacks == 1, "exactly one rollback expected");
  MF_CHECK_MSG(canary.stable_version == 1, "traffic must stay on v1");
  MF_CHECK_MSG(canary.canary_version == 0, "canary must be retired");
  MF_CHECK_MSG(rollback_errors == 0,
               "rollback must be invisible to clients (zero ERRs)");

  // -- shutdown: SIGINT-equivalent trip, daemon drains and exits 130 -------
  cancel.cancel();
  daemon.join();

  // -- 4. supervised chaos recovery ----------------------------------------
  // A fresh daemon under the serve supervisor (this binary re-executed via
  // --serve-child, inheriting the supervisor-owned listener), 8 chaos
  // clients, one SIGKILL under load. The poison v2 is retired first: this
  // phase measures transport faults, not canary routing.
  fs::remove(dir + "/m-v2.mfb");
  const std::string sup_socket = dir + "/sup.sock";
  CancelToken sup_cancel;
  SupervisedOptions sup;
  sup.socket_path = sup_socket;
  sup.child_args = {"--serve-child", dir, "{LISTEN_FD}",
                    dir + "/sup-stats.json"};
  sup.heartbeat_path = dir + "/sup-stats.json";
  sup.heartbeat_timeout_s = 30.0;
  sup.backoff_base_ms = 10.0;
  sup.backoff_cap_ms = 50.0;
  sup.grace_seconds = 3.0;
  sup.poll_ms = 5.0;
  sup.quiet = true;
  sup.cancel = &sup_cancel;
  std::atomic<pid_t> child_pid{-1};
  sup.on_spawn = [&child_pid](pid_t pid) { child_pid.store(pid); };
  SupervisedResult sup_result;
  std::thread supervisor([&] { sup_result = run_supervised(sup); });

  using SteadyClock = std::chrono::steady_clock;
  struct Sample {
    SteadyClock::time_point start;
    double latency_s = 0.0;
  };
  const int chaos_clients = 8;
  const std::size_t chaos_per_client = quick ? 150 : 600;
  std::vector<std::vector<Sample>> samples(chaos_clients);
  std::vector<ClientStats> chaos_stats(chaos_clients);
  std::vector<int> chaos_injected(chaos_clients, 0);
  std::atomic<std::uint64_t> chaos_wrong{0};
  std::atomic<std::uint64_t> chaos_gave_up{0};
  std::atomic<std::size_t> chaos_done{0};
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < chaos_clients; ++c) {
      threads.emplace_back([&, c] {
        const auto rows = make_rows(chaos_per_client, 500 + c);
        ClientOptions copts;
        copts.socket_path = sup_socket;
        copts.client_name = "chaos" + std::to_string(c);
        copts.connect_deadline_s = 20.0;
        copts.request_deadline_s = 60.0;
        copts.max_retries = 200;
        copts.backoff_base_ms = 1.0;
        copts.backoff_cap_ms = 20.0;
        copts.chaos.enabled = true;
        copts.chaos.seed = task_seed(2024, copts.client_name);
        copts.chaos.p_sever = 0.02;
        copts.chaos.p_truncate = 0.02;
        copts.chaos.p_duplicate = 0.02;
        copts.chaos.p_garbage = 0.02;
        ServeClient client(std::move(copts));
        samples[c].reserve(chaos_per_client);
        for (std::size_t i = 0; i < chaos_per_client; ++i) {
          const SteadyClock::time_point start = SteadyClock::now();
          std::string error;
          const std::optional<double> cf =
              client.estimate("t", "m", rows[i], &error);
          const double latency =
              std::chrono::duration<double>(SteadyClock::now() - start)
                  .count();
          if (!cf.has_value()) {
            ++chaos_gave_up;
          } else if (*cf != v1.estimator.predict_row(rows[i])) {
            ++chaos_wrong;
          }
          samples[c].push_back({start, latency});
          ++chaos_done;
        }
        chaos_stats[c] = client.stats();
        chaos_injected[c] = client.chaos_faults();
      });
    }
    // One daemon kill under load: what the recovery gate measures. Fire it
    // once a quarter of the traffic is through, so a substantial tail of
    // requests *starts* after the kill whatever the machine's speed.
    const std::size_t kill_after =
        static_cast<std::size_t>(chaos_clients) * chaos_per_client / 4;
    while (chaos_done.load() < kill_after) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const pid_t pid = child_pid.load();
    MF_CHECK_MSG(pid > 0, "supervised daemon never spawned");
    MF_CHECK(::kill(pid, SIGKILL) == 0);
    const SteadyClock::time_point kill_at = SteadyClock::now();
    // Hold the phase open until the supervisor has actually respawned --
    // cancelling first would race its poll loop and tear down a dead sock.
    for (int i = 0; i < 2000 && child_pid.load() == pid; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    MF_CHECK_MSG(child_pid.load() != pid,
                 "supervisor never respawned the killed daemon");
    for (std::thread& thread : threads) thread.join();
    sup_cancel.cancel();
    supervisor.join();

    std::vector<double> chaos_lat;
    std::vector<double> recovery_lat;
    for (const std::vector<Sample>& per_client_samples : samples) {
      for (const Sample& sample : per_client_samples) {
        chaos_lat.push_back(sample.latency_s);
        if (sample.start >= kill_at) recovery_lat.push_back(sample.latency_s);
      }
    }
    std::uint64_t retries = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t stray_lines = 0;
    std::uint64_t injected = 0;
    for (int c = 0; c < chaos_clients; ++c) {
      retries += chaos_stats[c].retries;
      reconnects += chaos_stats[c].reconnects;
      stray_lines += chaos_stats[c].stray_lines;
      injected += static_cast<std::uint64_t>(chaos_injected[c]);
    }
    const double p99_chaos_us = quantile_99(chaos_lat) * 1e6;
    const double recovery_p99_us = quantile_99(recovery_lat) * 1e6;
    std::printf(
        "chaos recovery: %d clients x %zu requests, %lu faults injected, "
        "%lu retries, %lu reconnects, %lu stray lines, %ld respawn(s)\n",
        chaos_clients, chaos_per_client, static_cast<unsigned long>(injected),
        static_cast<unsigned long>(retries),
        static_cast<unsigned long>(reconnects),
        static_cast<unsigned long>(stray_lines), sup_result.respawns);
    std::printf(
        "chaos latency: p99 %.0f us overall, %.0f us for the %zu requests "
        "started after the kill (recovery gate <= 10 s)\n",
        p99_chaos_us, recovery_p99_us, recovery_lat.size());
    MF_CHECK_MSG(sup_result.exit_code == 130,
                 "supervisor must exit 130 on cancellation");
    MF_CHECK_MSG(sup_result.respawns >= 1, "the killed daemon must respawn");
    MF_CHECK_MSG(chaos_wrong.load() == 0,
                 "chaos may cost latency, never a wrong answer");
    MF_CHECK_MSG(chaos_gave_up.load() == 0,
                 "every chaos request must eventually be answered");
    MF_CHECK_MSG(recovery_p99_us <= 10e6,
                 "post-kill recovery p99 exceeded 10 s");

    const ServerStats stats = server.stats();
    std::string json;
    char buf[1024];
    std::snprintf(
        buf, sizeof buf,
        " \"baseline_qps\": %.1f,\n \"coalesced_qps\": %.1f,\n"
        " \"speedup\": %.2f,\n \"clients\": %d,\n"
        " \"requests\": %lu,\n \"p99_us\": %lu,\n"
        " \"p99_gate_us\": %lu,\n \"coalesce_us\": %.0f,\n"
        " \"rollbacks\": %lu,\n \"client_errors\": %lu,\n"
        " \"chaos_clients\": %d,\n \"chaos_faults\": %lu,\n"
        " \"retries\": %lu,\n \"reconnects\": %lu,\n"
        " \"stray_lines\": %lu,\n \"respawns\": %ld,\n"
        " \"p99_chaos_us\": %.0f,\n \"recovery_p99_us\": %.0f\n",
        base_qps, load_qps, speedup, clients,
        static_cast<unsigned long>(stats.requests),
        static_cast<unsigned long>(p99_us),
        static_cast<unsigned long>(p99_limit_us), kCoalesceUs,
        static_cast<unsigned long>(canary.rollbacks),
        static_cast<unsigned long>(rollback_errors), chaos_clients,
        static_cast<unsigned long>(injected),
        static_cast<unsigned long>(retries),
        static_cast<unsigned long>(reconnects),
        static_cast<unsigned long>(stray_lines), sup_result.respawns,
        p99_chaos_us, recovery_p99_us);
    json += buf;
    if (!bench::write_bench_json("BENCH_SERVING.json", json)) return 1;
  }

  std::error_code ec;
  fs::remove_all(dir, ec);
  return 0;
}
