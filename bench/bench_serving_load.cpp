// Serving-daemon load bench: coalesced batching throughput, tail latency,
// and canary rollback under a real Unix-domain socket.
//
// Three claims are measured and *checked*, not just timed (MF_CHECK aborts
// on violation; the `bench_serving_load_quick` ctest entry relies on that):
//
//   1. Coalescing pays: many concurrent closed-loop clients sustain >= 5x
//      the QPS of one request-at-a-time client against the same daemon.
//      Each lone request must sit out the full coalesce window alone, while
//      concurrent clients share windows -- the speedup is amortisation, not
//      multicore (the gate holds on a 1-core container).
//   2. Batching is invisible in the bytes: every `OK <cf>` response parses
//      back (shortest round-trip format) to the bit-exact double the
//      bundle's estimator produces for that row in isolation, no matter
//      which rows shared a flush. Tail latency stays bounded: server-side
//      ESTIMATE p99 <= coalesce budget + scheduling slack (measured with a
//      log2 histogram, so the threshold allows its 2x bucket rounding).
//   3. A poisoned newer bundle version rolls back deterministically: with a
//      canary configured, a corrupt v2 trips the load breaker after
//      fail_threshold scans, traffic never leaves v1, and not a single ERR
//      response reaches any client before, during, or after the rollback.
//
// Results land in BENCH_SERVING.json. Plain main, like bench_serve: the
// daemon lifecycle does not fit the BM_ harness.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/check.hpp"
#include "common/io_util.hpp"
#include "common/parse_num.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "serve/registry.hpp"
#include "srv/protocol.hpp"
#include "srv/server.hpp"

#include "bench_common.hpp"

namespace {

using namespace mf;
namespace fs = std::filesystem;

ModelBundle make_bundle(const std::string& name) {
  Dataset data;
  data.feature_names = feature_names(FeatureSet::Classical);
  Rng rng(7);
  for (std::size_t i = 0; i < 80; ++i) {
    std::vector<double> row(data.feature_names.size());
    double target = 0.4;
    for (std::size_t j = 0; j < row.size(); ++j) {
      row[j] = j % 2 == 0 ? rng.uniform(0.0, 4000.0) : rng.uniform(0.0, 1.0);
      target += row[j] * (j % 3 == 0 ? 2.5e-4 : 0.05);
    }
    data.add(std::move(row), target + rng.uniform(0.0, 0.2),
             "s" + std::to_string(i));
  }
  ModelBundle bundle;
  bundle.name = name;
  bundle.provenance.seed = 3;
  bundle.provenance.dataset_rows = 80;
  bundle.estimator =
      CfEstimator(EstimatorKind::LinearRegression, FeatureSet::Classical);
  bundle.estimator.train(data);
  return bundle;
}

std::vector<std::vector<double>> make_rows(std::size_t n, std::uint64_t seed) {
  const std::size_t dim = feature_names(FeatureSet::Classical).size();
  Rng rng(seed);
  std::vector<std::vector<double>> rows(n);
  for (std::vector<double>& row : rows) {
    row.resize(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      row[j] = j % 2 == 0 ? rng.uniform(0.0, 5000.0) : rng.uniform(0.0, 1.0);
    }
  }
  return rows;
}

/// One closed-loop protocol client over the daemon's real socket.
class Client {
 public:
  explicit Client(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    MF_CHECK(fd_ >= 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    MF_CHECK(socket_path.size() < sizeof(addr.sun_path));
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    // The daemon's listener may be a beat behind the bind; retry briefly.
    for (int attempt = 0;; ++attempt) {
      if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof addr) == 0) {
        break;
      }
      MF_CHECK_MSG(attempt < 200, "daemon socket never came up");
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  std::string transact(const std::string& line) {
    MF_CHECK(write_all(fd_, line));
    for (;;) {
      if (std::optional<std::string> response = pop_line(buffer_)) {
        return *response;
      }
      const std::optional<std::size_t> n = read_some(fd_, buffer_);
      MF_CHECK_MSG(n.has_value() && *n > 0, "daemon hung up mid-request");
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

std::string estimate_line(const std::string& client, const std::string& model,
                          const std::vector<double>& row) {
  std::string line = "ESTIMATE " + client + " " + model;
  for (const double v : row) line += " " + format_double(v);
  line += "\n";
  return line;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  bench::banner("serving daemon: coalesced batching, tail latency, canary "
                "rollback",
                "estimator serving for the CF predictions of Section V");

  const std::string dir =
      (fs::temp_directory_path() /
       ("mf_bench_srv_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string socket_path = dir + "/serve.sock";

  ModelRegistry registry(dir);
  const ModelBundle v1 = make_bundle("m");
  MF_CHECK(registry.put(v1).has_value());

  constexpr double kCoalesceUs = 1000.0;
  CancelToken cancel;
  ServerOptions options;
  options.registry_dir = dir;
  options.socket_path = socket_path;
  options.coalesce.coalesce_us = kCoalesceUs;
  options.coalesce.max_batch = 128;
  options.coalesce.queue_capacity = 512;
  options.canary.percent = 100;
  options.canary.fail_threshold = 3;
  options.reload_poll_seconds = 0.02;
  options.cancel = &cancel;
  EstimatorServer server(options);
  std::thread daemon([&server] { MF_CHECK(server.run() == 130); });

  // -- 1. closed-loop baseline: one request at a time ----------------------
  // Every lone request waits out the full coalesce window by itself, so
  // this is the price of not batching.
  const std::size_t base_n = quick ? 300 : 2000;
  const auto base_rows = make_rows(base_n, 11);
  double base_qps = 0.0;
  {
    Client client(socket_path);
    Timer timer;
    for (std::size_t i = 0; i < base_n; ++i) {
      const std::string response =
          client.transact(estimate_line("base", "m", base_rows[i]));
      const std::optional<double> cf = parse_ok_cf(response + "\n");
      MF_CHECK_MSG(cf.has_value(), "baseline request failed: " + response);
      MF_CHECK(*cf == v1.estimator.predict_row(base_rows[i]));
    }
    base_qps = static_cast<double>(base_n) / timer.seconds();
  }
  std::printf("closed-loop baseline: %zu requests, %.0f QPS "
              "(coalesce budget %.0f us paid per request)\n",
              base_n, base_qps, kCoalesceUs);

  // -- 2. concurrent load: windows amortise across clients -----------------
  const int clients = quick ? 16 : 32;
  const std::size_t per_client = quick ? 300 : 1500;
  std::atomic<std::uint64_t> identity_misses{0};
  std::atomic<std::uint64_t> errors{0};
  Timer load_timer;
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        const auto rows = make_rows(per_client, 100 + c);
        Client client(socket_path);
        const std::string name = "tenant" + std::to_string(c);
        for (std::size_t i = 0; i < per_client; ++i) {
          const std::string response =
              client.transact(estimate_line(name, "m", rows[i]));
          const std::optional<double> cf = parse_ok_cf(response + "\n");
          if (!cf.has_value()) {
            ++errors;
          } else if (*cf != v1.estimator.predict_row(rows[i])) {
            ++identity_misses;
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  const double load_s = load_timer.seconds();
  const double load_qps =
      static_cast<double>(clients) * static_cast<double>(per_client) / load_s;
  const double speedup = load_qps / base_qps;
  std::printf("coalesced load: %d clients x %zu requests -> %.0f QPS, "
              "%.1fx the baseline (acceptance target >= 5x)\n",
              clients, per_client, load_qps, speedup);
  MF_CHECK_MSG(errors.load() == 0, "load phase saw ERR responses");
  MF_CHECK_MSG(identity_misses.load() == 0,
               "batched responses must be bit-identical to solo prediction");
  MF_CHECK_MSG(speedup >= 5.0,
               "coalesced batching must sustain >= 5x closed-loop QPS");

  // Server-side ESTIMATE p99 against the latency budget. The log2
  // histogram reports bucket upper bounds (within 2x), so the gate allows
  // budget + 50 ms scheduling slack, rounded by one bucket.
  const std::uint64_t p99_us = server.stats().request_ns.quantile_max(0.99) / 1000;
  const std::uint64_t p99_limit_us =
      2 * (static_cast<std::uint64_t>(kCoalesceUs) + 50000);
  std::printf("server-side ESTIMATE p99 <= %lu us (budget %.0f us, "
              "gate %lu us)\n",
              static_cast<unsigned long>(p99_us), kCoalesceUs,
              static_cast<unsigned long>(p99_limit_us));
  MF_CHECK_MSG(p99_us <= p99_limit_us,
               "ESTIMATE p99 exceeded the coalesce budget + slack");

  // -- 3. deterministic canary rollback ------------------------------------
  // A corrupt v2 appears while traffic flows. The canary load breaker must
  // condemn it after fail_threshold scans; every response before, during,
  // and after stays a v1 OK.
  {
    std::ofstream poison(dir + "/m-v2.mfb", std::ios::binary);
    poison << "macroflow-model-bundle 1\nnot a bundle at all\n";
  }
  std::uint64_t rollback_errors = 0;
  {
    Client client(socket_path);
    const auto rows = make_rows(quick ? 200 : 1000, 77);
    std::size_t i = 0;
    Timer rollback_timer;
    while (server.canary_status("m").rollbacks == 0) {
      MF_CHECK_MSG(rollback_timer.seconds() < 30.0,
                   "canary rollback never happened");
      const std::string response =
          client.transact(estimate_line("t", "m", rows[i % rows.size()]));
      const std::optional<double> cf = parse_ok_cf(response + "\n");
      if (!cf.has_value() ||
          *cf != v1.estimator.predict_row(rows[i % rows.size()])) {
        ++rollback_errors;
      }
      ++i;
    }
    // Post-rollback: still v1, still zero errors.
    for (std::size_t j = 0; j < 50; ++j) {
      const std::string response =
          client.transact(estimate_line("t", "m", rows[j]));
      const std::optional<double> cf = parse_ok_cf(response + "\n");
      if (!cf.has_value() || *cf != v1.estimator.predict_row(rows[j])) {
        ++rollback_errors;
      }
    }
  }
  const CanaryStatus canary = server.canary_status("m");
  std::printf("canary rollback: stable=v%d canary=v%d rollbacks=%lu, "
              "client-visible errors %lu (must be 0)\n",
              canary.stable_version, canary.canary_version,
              static_cast<unsigned long>(canary.rollbacks),
              static_cast<unsigned long>(rollback_errors));
  MF_CHECK_MSG(canary.rollbacks == 1, "exactly one rollback expected");
  MF_CHECK_MSG(canary.stable_version == 1, "traffic must stay on v1");
  MF_CHECK_MSG(canary.canary_version == 0, "canary must be retired");
  MF_CHECK_MSG(rollback_errors == 0,
               "rollback must be invisible to clients (zero ERRs)");

  // -- shutdown: SIGINT-equivalent trip, daemon drains and exits 130 -------
  cancel.cancel();
  daemon.join();

  const ServerStats stats = server.stats();
  std::string json;
  char buf[512];
  std::snprintf(buf, sizeof buf,
                " \"baseline_qps\": %.1f,\n \"coalesced_qps\": %.1f,\n"
                " \"speedup\": %.2f,\n \"clients\": %d,\n"
                " \"requests\": %lu,\n \"p99_us\": %lu,\n"
                " \"p99_gate_us\": %lu,\n \"coalesce_us\": %.0f,\n"
                " \"rollbacks\": %lu,\n \"client_errors\": %lu\n",
                base_qps, load_qps, speedup, clients,
                static_cast<unsigned long>(stats.requests),
                static_cast<unsigned long>(p99_us),
                static_cast<unsigned long>(p99_limit_us), kCoalesceUs,
                static_cast<unsigned long>(canary.rollbacks),
                static_cast<unsigned long>(rollback_errors));
  json += buf;
  if (!bench::write_bench_json("BENCH_SERVING.json", json)) return 1;

  std::error_code ec;
  fs::remove_all(dir, ec);
  return 0;
}
