// Figure 10 -- predicted versus actual (minimal) correction factor on the
// held-out test set, per feature set.
//
// Paper: the relative 'Additional' features (and 'All') track the truth
// noticeably better than the classical counts, especially at high CFs where
// the biased training set starves the learners.

#include <algorithm>
#include <map>

#include "bench_common.hpp"
#include "common/csv.hpp"

int main() {
  using namespace mf;
  bench::banner("Figure 10: predicted vs actual CF (random forest)",
                "'Additional'/'All' follow the diagonal; classical features "
                "flatten out at high CFs");

  const Device dev = xc7z020_model();
  const GroundTruth truth = bench::dataset_truth(dev);

  const FeatureSet sets[] = {FeatureSet::Classical, FeatureSet::ClassicalStar,
                             FeatureSet::Additional, FeatureSet::All};

  // Bucket the test samples by actual CF and accumulate mean predictions of
  // each feature set (deterministic split shared across sets).
  std::map<int, std::map<FeatureSet, std::pair<double, int>>> buckets;
  std::map<int, int> bucket_count;
  CsvWriter csv({"actual_cf", "classical", "classical_star", "additional",
                 "all", "count"});

  for (FeatureSet set : sets) {
    Rng rng(7);
    const Dataset balanced = balance_by_target(
        make_dataset(set, truth.samples), bench::kBinWidth, bench::kBinCap,
        rng);
    Rng split_rng(8);
    const auto [train, test] =
        train_test_split(balanced, bench::kTrainFraction, split_rng);
    CfEstimator rf(EstimatorKind::RandomForest, set);
    rf.train(train);
    const std::vector<double> pred = rf.predict_rows(test.x);
    for (std::size_t i = 0; i < test.y.size(); ++i) {
      const int bucket = static_cast<int>(test.y[i] * 10.0 + 0.5);  // 0.1 bins
      auto& [sum, count] = buckets[bucket][set];
      sum += pred[i];
      ++count;
      if (set == sets[0]) ++bucket_count[bucket];
    }
  }

  Table table({"actual CF", "n", "Classical", "Classical*", "Additional",
               "All"});
  for (const auto& [bucket, per_set] : buckets) {
    const double actual = bucket / 10.0;
    auto mean_of = [&](FeatureSet set) {
      const auto it = per_set.find(set);
      if (it == per_set.end() || it->second.second == 0) return 0.0;
      return it->second.first / it->second.second;
    };
    table.row()
        .cell(actual, 1)
        .cell(bucket_count[bucket])
        .cell(mean_of(FeatureSet::Classical), 3)
        .cell(mean_of(FeatureSet::ClassicalStar), 3)
        .cell(mean_of(FeatureSet::Additional), 3)
        .cell(mean_of(FeatureSet::All), 3);
    csv.row()
        .cell(actual, 1)
        .cell(mean_of(FeatureSet::Classical), 4)
        .cell(mean_of(FeatureSet::ClassicalStar), 4)
        .cell(mean_of(FeatureSet::Additional), 4)
        .cell(mean_of(FeatureSet::All), 4)
        .cell(bucket_count[bucket]);
  }
  table.print();

  // High-CF tracking error (the paper's visual argument): mean |pred-actual|
  // restricted to actual CF >= 1.4.
  std::printf("\nhigh-CF (>=1.4) mean absolute deviation of the bucket "
              "means from the diagonal:\n");
  for (FeatureSet set : sets) {
    double dev_sum = 0.0;
    int dev_n = 0;
    for (const auto& [bucket, per_set] : buckets) {
      if (bucket < 14) continue;
      const auto it = per_set.find(set);
      if (it == per_set.end() || it->second.second == 0) continue;
      dev_sum += std::abs(it->second.first / it->second.second -
                          bucket / 10.0);
      ++dev_n;
    }
    std::printf("  %-11s %.3f\n", to_string(set),
                dev_n ? dev_sum / dev_n : 0.0);
  }
  if (csv.write("fig10_pred_vs_actual.csv")) {
    std::printf("raw series written to fig10_pred_vs_actual.csv\n");
  }
  return 0;
}
