#pragma once
// Shared setup for the per-table / per-figure bench harnesses.
//
// Every bench binary regenerates its inputs deterministically (seeded
// sweeps), prints the paper's table or figure in ASCII, and notes the
// paper's reference numbers next to the measured ones. Absolute values are
// not expected to match (the substrate is a simulator, not the authors'
// Vivado testbed); the *shape* -- who wins, by roughly what factor, where
// crossovers fall -- is the reproduction target. See EXPERIMENTS.md.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/estimator.hpp"
#include "fabric/catalog.hpp"
#include "flow/ground_truth.hpp"
#include "flow/serialize.hpp"
#include "ml/metrics.hpp"
#include "nn/cnv_w1a1.hpp"

namespace mf::bench {

/// Canonical dataset sweep (Section VI-A): ~2,000 modules, seed 42.
inline constexpr SweepOptions kSweep{2000, 42};
/// The paper's balancing cap: 75 samples per 0.02-wide CF bin.
inline constexpr double kBinWidth = 0.02;
inline constexpr int kBinCap = 75;
inline constexpr double kTrainFraction = 0.8;

/// Version stamp shared by every BENCH_*.json artifact. Bump it whenever a
/// field changes meaning or moves, so downstream tooling comparing bench
/// history across commits can refuse mismatched shapes instead of silently
/// misreading them.
inline constexpr int kBenchSchemaVersion = 1;

/// Write one BENCH_*.json artifact: `body` carries the emitter's fields
/// (without the outer braces); the common envelope prepends the
/// schema_version stamp so every artifact self-identifies.
inline bool write_bench_json(const std::string& path,
                             const std::string& body) {
  const std::string json = "{\n \"schema_version\": " +
                           std::to_string(kBenchSchemaVersion) + ",\n" +
                           body + "}\n";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "could not write %s\n", path.c_str());
    return false;
  }
  std::fputs(json.c_str(), out);
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

inline void banner(const char* experiment, const char* paper_summary) {
  std::printf("==================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper reference: %s\n", paper_summary);
  std::printf("==================================================================\n");
}

/// Worker threads for dataset / flow construction in the benches: the
/// MACROFLOW_JOBS env var (0 = hardware concurrency), defaulting to the
/// build's MF_JOBS_DEFAULT. Every labelled dataset is bit-identical at any
/// value, so this only changes how long a bench takes to set up.
inline int bench_jobs() {
  const char* env = std::getenv("MACROFLOW_JOBS");
  if (env == nullptr || *env == '\0') return MF_JOBS_DEFAULT;
  return std::atoi(env);
}

/// Full labelled dataset (built in ~10 s). Set MACROFLOW_GT_CACHE=<path> to
/// cache the labels on disk across bench invocations; the cache is fully
/// regenerable and validated on load.
inline GroundTruth dataset_truth(const Device& device) {
  const char* cache = std::getenv("MACROFLOW_GT_CACHE");
  if (cache != nullptr) {
    if (auto loaded = load_ground_truth(cache)) {
      GroundTruth truth;
      truth.samples = std::move(*loaded);
      return truth;
    }
  }
  GroundTruth truth =
      build_ground_truth(dataset_sweep(kSweep), device, {}, bench_jobs());
  if (cache != nullptr) save_ground_truth(cache, truth.samples);
  return truth;
}

/// The paper's balanced dataset (Figure 8): shuffle, cap 75 per bin.
inline Dataset balanced_dataset(FeatureSet set, const GroundTruth& truth,
                                std::uint64_t seed = 7) {
  Rng rng(seed);
  return balance_by_target(make_dataset(set, truth.samples), kBinWidth,
                           kBinCap, rng);
}

/// cnvW1A1 unique blocks labelled with minimal CFs; `drop_tiny` reproduces
/// the paper's removal of one-/two-tile modules (74 -> 63 blocks).
inline GroundTruth cnv_truth(const Device& device, bool drop_tiny) {
  const CnvDesign design = build_cnv_w1a1();
  // est >= 18 slices keeps 63 of the 74 unique blocks, matching the paper's
  // "removed the modules that had one or two tiles ... 63 implemented
  // modules" (Section VIII).
  return label_blocks(design, device, /*search_start=*/0.5,
                      /*min_est_slices=*/drop_tiny ? 18 : 0, bench_jobs());
}

}  // namespace mf::bench
