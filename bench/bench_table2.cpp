// Table II -- relative error of the proposed estimators across the four
// feature sets, plus the nine-input linear regression baseline.
//
// Paper numbers (mean relative error on the held-out 20%):
//   DT:  7.4% / 7.4% / 5.4% / 5.2%   (Classical / Classical* / Additional / All)
//   RF:  6.2% / 5.9% / 4.8% / 4.9%
//   NN:  -    / -    / -    / 5.1%   (all features)
//   LinReg (9 inputs): 9.4%

#include "bench_common.hpp"

int main() {
  using namespace mf;
  bench::banner("Table II: estimator relative error per feature set",
                "DT 7.4/7.4/5.4/5.2%; RF 6.2/5.9/4.8/4.9%; NN 5.1% (All); "
                "linear regression 9.4%");

  const Device dev = xc7z020_model();
  Timer timer;
  const GroundTruth truth = bench::dataset_truth(dev);
  std::printf("dataset: %zu labelled modules (%.1fs)\n", truth.samples.size(),
              timer.seconds());

  const FeatureSet sets[] = {FeatureSet::Classical, FeatureSet::ClassicalStar,
                             FeatureSet::Additional, FeatureSet::All};
  Table table({"features", "DT error", "RF error", "NN error"});

  double nn_error = 0.0;
  for (FeatureSet set : sets) {
    // Balance and split identically for every model (paper: 80/20).
    Rng rng(7);
    const Dataset balanced = balance_by_target(
        make_dataset(set, truth.samples), bench::kBinWidth, bench::kBinCap,
        rng);
    Rng split_rng(8);
    const auto [train, test] =
        train_test_split(balanced, bench::kTrainFraction, split_rng);

    CfEstimator dt(EstimatorKind::DecisionTree, set);
    dt.train(train);
    const double dt_err =
        mean_relative_error(dt.predict_rows(test.x), test.y);

    CfEstimator rf(EstimatorKind::RandomForest, set);
    rf.train(train);
    const double rf_err =
        mean_relative_error(rf.predict_rows(test.x), test.y);

    std::string nn_cell = "-";
    if (set == FeatureSet::All) {
      // The paper feeds all features to the NN only.
      CfEstimator nn(EstimatorKind::NeuralNetwork, set);
      nn.train(train);
      nn_error = mean_relative_error(nn.predict_rows(test.x), test.y);
      nn_cell = fmt(100.0 * nn_error, 1) + "%";
    }

    table.row()
        .cell(to_string(set))
        .cell(fmt(100.0 * dt_err, 1) + "%")
        .cell(fmt(100.0 * rf_err, 1) + "%")
        .cell(nn_cell);
  }
  table.print();

  // Linear regression on the paper's nine inputs.
  {
    Rng rng(7);
    const Dataset balanced = balance_by_target(
        make_dataset(FeatureSet::LinReg9, truth.samples), bench::kBinWidth,
        bench::kBinCap, rng);
    Rng split_rng(8);
    const auto [train, test] =
        train_test_split(balanced, bench::kTrainFraction, split_rng);
    CfEstimator lin(EstimatorKind::LinearRegression, FeatureSet::LinReg9);
    lin.train(train);
    const double err = mean_relative_error(lin.predict_rows(test.x), test.y);
    std::printf("\nlinear regression (9 inputs): %.1f%% mean relative error "
                "[paper: 9.4%%]\n",
                100.0 * err);
  }

  std::printf(
      "\nshape checks (paper): relative 'Additional' features beat the raw\n"
      "'Classical' counts for both tree models; RF <= DT; adding placement\n"
      "features to Classical changes little; all learned models beat the\n"
      "linear baseline.\n");
  std::printf("total %.1fs\n", timer.seconds());
  return 0;
}
