// Table I -- "Synthesis results of the cnvW1A1": slices and longest path for
// mvau_18 and weights_14 implemented with PBlock CF 1.5 vs the minimal
// feasible CF, against the flat "AMD EDA" baseline. Also prints the Figure 3
// placement-regularity metrics (fill ratio, bounding box) that motivate the
// tight CFs.
//
// Paper numbers: mvau_18 31/28 slices, 4.829/5.769 ns (CF 1.5 / 1);
// weights_14 1529/1371 slices, 10.767/13.478 ns; AMD: 30,34,32,29 (four
// mvau_18 instances) and 1430.

#include "bench_common.hpp"
#include "core/cf_search.hpp"
#include "flow/monolithic.hpp"
#include "flow/rw_flow.hpp"
#include "synth/optimize.hpp"
#include "timing/sta.hpp"

namespace {

using namespace mf;

struct BlockResult {
  double cf = 0.0;
  int slices = 0;
  double longest_ns = 0.0;
  double fill_ratio = 0.0;
  PBlock pblock;
};

BlockResult implement_at(const Module& original, const Device& dev,
                         double cf) {
  Module module = original;
  optimize(module.netlist);
  const ResourceReport report = make_report(module.netlist);
  const ShapeReport shape = quick_place(report);
  const auto pb = generate_pblock(dev, report, shape, cf);
  MF_CHECK_MSG(pb.has_value(), "no PBlock at requested CF");
  const PlaceResult place = place_in_pblock(module, report, dev, *pb, {});
  MF_CHECK_MSG(place.feasible, "infeasible at requested CF: " +
                                   place.fail_reason);
  BlockResult out;
  out.cf = cf;
  out.slices = place.used_slices;
  out.fill_ratio = place.fill_ratio;
  out.pblock = *pb;
  out.longest_ns = analyze_timing(module.netlist, place.placement,
                                  place.route,
                                  DetailedPlaceOptions{}.route.cell_capacity)
                       .longest_path_ns;
  return out;
}

double min_cf_of(const Module& original, const Device& dev) {
  Module module = original;
  optimize(module.netlist);
  const ResourceReport report = make_report(module.netlist);
  const ShapeReport shape = quick_place(report);
  CfSearchOptions opts;
  opts.start = 0.5;
  const CfSearchResult found = find_min_cf(module, report, shape, dev, opts);
  MF_CHECK(found.found);
  return found.min_cf;
}

}  // namespace

int main() {
  using namespace mf;
  bench::banner("Table I: slices & longest path at CF 1.5 vs minimal CF",
                "mvau_18: 31/28 slices, 4.83/5.77 ns; weights_14: 1529/1371 "
                "slices, 10.77/13.48 ns; AMD EDA: ~30-34 and 1430 slices");

  const Device dev = xc7z020_model();
  const CnvDesign design = build_cnv_w1a1();

  // Flat baseline (the "AMD EDA" column).
  const MonolithicResult amd = place_monolithic(design, dev);
  std::printf("flat baseline: %s, %.2f%% of device slices used\n\n",
              amd.feasible ? "fully placed" : amd.fail_reason.c_str(),
              100.0 * amd.utilization);

  Table table({"block", "CF", "RW slices", "RW longest (ns)", "fill ratio",
               "PBlock", "AMD slices"});
  for (const char* name : {"mvau_18", "weights_14"}) {
    const int unique = design.unique_index(name);
    MF_CHECK(unique >= 0);
    const Module& module =
        design.unique_modules[static_cast<std::size_t>(unique)];

    std::string amd_slices;
    for (std::size_t i = 0; i < design.instances.size(); ++i) {
      if (design.instances[i].macro != unique) continue;
      if (!amd_slices.empty()) amd_slices += ",";
      amd_slices += std::to_string(amd.instance_slices[i]);
    }

    const double min_cf = min_cf_of(module, dev);
    const BlockResult loose = implement_at(module, dev, 1.5);
    const BlockResult tight = implement_at(module, dev, min_cf);

    table.row()
        .cell(name)
        .cell(1.5, 2)
        .cell(loose.slices)
        .cell(loose.longest_ns, 3)
        .cell(loose.fill_ratio, 2)
        .cell(to_string(loose.pblock))
        .cell(amd_slices);
    table.row()
        .cell(name)
        .cell(min_cf, 2)
        .cell(tight.slices)
        .cell(tight.longest_ns, 3)
        .cell(tight.fill_ratio, 2)
        .cell(to_string(tight.pblock))
        .cell(amd_slices);
  }
  table.print();

  std::printf(
      "\nshape checks (paper): tight CF -> fewer used slices but longer\n"
      "critical path (congestion detours); loose CF -> more slices than the\n"
      "flat tool; higher fill ratio at the tight CF (Figure 3 regularity).\n");
  return 0;
}
