// Figure 7 -- design-space coverage of the generated RTL dataset: the
// LUT / FF / carry usage of the ~2,000 generated modules.
//
// Paper: modules range up to ~5,000 LUTs (11% of the device); the space is
// covered broadly across the three resource axes.

#include <algorithm>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "synth/optimize.hpp"

namespace {

using namespace mf;

void print_percentiles(const char* name, std::vector<int> values) {
  std::sort(values.begin(), values.end());
  auto pct = [&](double p) {
    return values[static_cast<std::size_t>(p * (values.size() - 1))];
  };
  std::printf("%-8s min=%-6d p25=%-6d p50=%-6d p75=%-6d p95=%-6d max=%-6d\n",
              name, values.front(), pct(0.25), pct(0.5), pct(0.75),
              pct(0.95), values.back());
}

}  // namespace

int main() {
  using namespace mf;
  bench::banner("Figure 7: dataset design-space coverage (LUT/FF/carry)",
                "~2,000 modules, 12 to ~5,000 LUTs (largest = 11% of the "
                "device), all resource mixes covered");

  const std::vector<GenSpec> specs = dataset_sweep(bench::kSweep);
  Timer timer;
  std::vector<int> luts;
  std::vector<int> ffs;
  std::vector<int> carry;
  std::vector<int> mem;
  int per_kind[7] = {};
  CsvWriter csv({"module", "kind", "luts", "ffs", "carry", "mem"});
  for (const GenSpec& spec : specs) {
    Module m = realize(spec);
    optimize(m.netlist);
    const NetlistStats s = compute_stats(m.netlist);
    luts.push_back(s.luts);
    ffs.push_back(s.ffs);
    carry.push_back(s.carry4);
    mem.push_back(s.m_lut_cells());
    ++per_kind[static_cast<int>(spec.kind)];
    csv.row()
        .cell(spec.name)
        .cell(to_string(spec.kind))
        .cell(s.luts)
        .cell(s.ffs)
        .cell(s.carry4)
        .cell(s.m_lut_cells());
  }

  std::printf("modules: %zu (%.1fs)\n", specs.size(), timer.seconds());
  for (int k = 0; k < 7; ++k) {
    std::printf("  %-9s %d\n", to_string(static_cast<GenKind>(k)),
                per_kind[k]);
  }
  std::printf("\nresource usage percentiles:\n");
  print_percentiles("LUTs", luts);
  print_percentiles("FFs", ffs);
  print_percentiles("CARRY4", carry);
  print_percentiles("SRL+RAM", mem);

  const int max_luts = *std::max_element(luts.begin(), luts.end());
  const Device dev = xc7z020_model();
  std::printf("\nlargest module: %d LUTs = %.1f%% of device LUTs "
              "[paper: ~5,000 LUTs = 11%%]\n",
              max_luts, 100.0 * max_luts / dev.totals().luts());

  // 2D coverage view (the paper's 3D scatter collapsed): LUT vs FF density.
  std::printf("\ncoverage map: rows = log2(LUTs), cols = log2(FFs), "
              "cell = #modules\n");
  int grid[14][14] = {};
  for (std::size_t i = 0; i < luts.size(); ++i) {
    int lb = 0;
    while ((2 << lb) <= luts[i] && lb < 13) ++lb;
    int fb = 0;
    while ((2 << fb) <= ffs[i] && fb < 13) ++fb;
    ++grid[lb][fb];
  }
  std::printf("      ");
  for (int f = 0; f < 14; ++f) std::printf("%5d", 2 << f);
  std::printf("  (FFs)\n");
  for (int l = 0; l < 14; ++l) {
    std::printf("%5d ", 2 << l);
    for (int f = 0; f < 14; ++f) {
      if (grid[l][f] == 0) {
        std::printf("    .");
      } else {
        std::printf("%5d", grid[l][f]);
      }
    }
    std::printf("\n");
  }
  std::printf("(LUTs)\n");

  if (csv.write("fig7_coverage.csv")) {
    std::printf("\nraw series written to fig7_coverage.csv\n");
  }
  return 0;
}
