#include "flow/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "fabric/catalog.hpp"
#include "flow/ground_truth.hpp"
#include "flow/rw_flow.hpp"
#include "rtlgen/generators.hpp"

namespace mf {
namespace {

std::vector<LabeledModule> small_truth() {
  const Device dev = xc7z020_model();
  return build_ground_truth(dataset_sweep({25, 11}), dev).samples;
}

TEST(Serialize, RoundTripsEveryField) {
  const std::vector<LabeledModule> original = small_truth();
  ASSERT_FALSE(original.empty());
  const auto parsed = ground_truth_from_text(ground_truth_to_text(original));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const LabeledModule& a = original[i];
    const LabeledModule& b = (*parsed)[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_DOUBLE_EQ(a.min_cf, b.min_cf);
    EXPECT_EQ(a.report.stats.luts, b.report.stats.luts);
    EXPECT_EQ(a.report.stats.control_sets, b.report.stats.control_sets);
    EXPECT_EQ(a.report.stats.max_fanout, b.report.stats.max_fanout);
    EXPECT_EQ(a.report.stats.carry_chains, b.report.stats.carry_chains);
    EXPECT_EQ(a.report.est_slices, b.report.est_slices);
    EXPECT_EQ(a.report.est_slices_m, b.report.est_slices_m);
    EXPECT_EQ(a.shape.bbox_w, b.shape.bbox_w);
    EXPECT_EQ(a.shape.min_height, b.shape.min_height);
  }
}

TEST(Serialize, FeaturesSurviveTheRoundTrip) {
  // The point of the cache: extracted features must be bit-identical.
  const std::vector<LabeledModule> original = small_truth();
  const auto parsed = ground_truth_from_text(ground_truth_to_text(original));
  ASSERT_TRUE(parsed.has_value());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const auto fa = extract_features(FeatureSet::All, original[i].report,
                                     original[i].shape);
    const auto fb = extract_features(FeatureSet::All, (*parsed)[i].report,
                                     (*parsed)[i].shape);
    ASSERT_EQ(fa, fb);
  }
}

TEST(Serialize, RejectsWrongHeader) {
  EXPECT_FALSE(ground_truth_from_text("not-a-cache v0\n").has_value());
  EXPECT_FALSE(ground_truth_from_text("").has_value());
}

TEST(Serialize, RejectsTruncatedRow) {
  std::string text =
      "macroflow-ground-truth v3\nmodule 1.1 2 3\n# samples 1\n";
  EXPECT_FALSE(ground_truth_from_text(text).has_value());
}

TEST(Serialize, RejectsStaleV2Header) {
  // v3 added the sample-count footer; v2 files must re-label, not half-load.
  EXPECT_FALSE(
      ground_truth_from_text("macroflow-ground-truth v2\n").has_value());
}

TEST(Serialize, RejectsTruncatedFile) {
  // A ground-truth cache that lost its tail (killed writer, full disk) must
  // be rejected wholesale: training on a silently shortened sample set would
  // skew the estimator without any visible error.
  const std::string text = ground_truth_to_text(small_truth());

  // Drop the footer line entirely.
  const std::size_t footer = text.rfind("# samples ");
  ASSERT_NE(footer, std::string::npos);
  EXPECT_FALSE(ground_truth_from_text(text.substr(0, footer)).has_value());

  // Drop the last sample row but keep the footer: count mismatch.
  const std::size_t last_row = text.rfind('\n', footer - 2);
  ASSERT_NE(last_row, std::string::npos);
  std::string missing_row =
      text.substr(0, last_row + 1) + text.substr(footer);
  EXPECT_FALSE(ground_truth_from_text(missing_row).has_value());

  // Data after the footer is equally suspect.
  EXPECT_FALSE(ground_truth_from_text(text + "stray row\n").has_value());

  // The untampered text still parses -- the guards above are not vacuous.
  EXPECT_TRUE(ground_truth_from_text(text).has_value());
}

TEST(Serialize, CrlfCheckpointRoundTrips) {
  // A checkpoint round-tripped through a CRLF-normalizing tool (Windows
  // editor, some git configs) keeps a '\r' on every line that std::getline
  // hands back. Before the fix, the header compare failed and the whole file
  // was rejected; with the fix a CRLF file loads identically to LF.
  const std::vector<LabeledModule> original = small_truth();
  ASSERT_FALSE(original.empty());
  std::string text = ground_truth_to_text(original);
  std::string crlf;
  crlf.reserve(text.size() + 64);
  for (char c : text) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  const auto parsed = ground_truth_from_text(crlf);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*parsed)[i].name, original[i].name);
    EXPECT_DOUBLE_EQ((*parsed)[i].min_cf, original[i].min_cf);
    EXPECT_EQ((*parsed)[i].report.stats.carry_chains,
              original[i].report.stats.carry_chains);
  }
}

TEST(Serialize, CrlfModuleCacheRoundTrips) {
  // The module-cache entries carry a trailing per-line checksum, so a kept
  // '\r' used to corrupt *every* entry (checksum over "payload\r") even when
  // the header happened to match. CRLF must now load with zero corrupt rows.
  const Device dev = xc7z020_model();
  BlockDesign design;
  Rng rng(5);
  MixedParams p;
  p.luts = 90;
  p.ffs = 70;
  design.unique_modules.push_back(gen_mixed(p, rng));
  design.unique_modules.back().name = "crlf_block";
  design.instances.push_back(BlockInstance{"i0", 0});
  CfPolicy policy;
  policy.constant_cf = 1.8;
  RwFlowOptions opts;
  opts.compute_timing = false;
  opts.run_stitch = false;
  ModuleCache cache;
  ASSERT_EQ(cache.run(design, dev, policy, opts).failed_blocks, 0);

  std::string text = module_cache_to_text(cache);
  std::string crlf;
  for (char c : text) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  ModuleCache reloaded;
  const CacheLoadStats stats = module_cache_from_text(crlf, reloaded);
  EXPECT_TRUE(stats.header_ok);
  EXPECT_TRUE(stats.complete);
  EXPECT_EQ(stats.loaded, 1);
  EXPECT_EQ(stats.corrupted, 0);
  const ImplementedBlock* restored = reloaded.find("crlf_block");
  ASSERT_NE(restored, nullptr);
  const ImplementedBlock* first = cache.find("crlf_block");
  ASSERT_NE(first, nullptr);
  EXPECT_DOUBLE_EQ(restored->macro.cf, first->macro.cf);
  EXPECT_EQ(restored->macro.used_slices, first->macro.used_slices);
}

TEST(Serialize, FileRoundTrip) {
  const std::vector<LabeledModule> original = small_truth();
  const std::string path = "/tmp/mf_gt_test.txt";
  ASSERT_TRUE(save_ground_truth(path, original));
  const auto loaded = load_ground_truth(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), original.size());
  std::remove(path.c_str());
  EXPECT_FALSE(load_ground_truth(path).has_value());
}

/// One minimal sample with a chosen label -- the precision tests vary only
/// min_cf, the lone double in the ground-truth row.
LabeledModule sample_with_cf(double min_cf) {
  LabeledModule s;
  s.name = "m";
  s.min_cf = min_cf;
  s.report.stats.luts = 10;
  s.report.stats.cells = 10;
  s.shape.bbox_w = 1;
  s.shape.bbox_h = 1;
  s.shape.min_height = 1;
  return s;
}

TEST(Serialize, TextDoublesRoundTripBitExact) {
  // Regression for the 6-significant-digit ostream default: labels like
  // 1.0000000000000002 used to reload as 1.0 and drift on every save/load
  // cycle. format_double (shortest round-trip) must preserve the exact
  // bits, including subnormal-adjacent and tiny values.
  const double awkward[] = {0.1, 1e-17, 1.0000000000000002, 1.0 / 3.0,
                            123456.789012345678};
  for (double value : awkward) {
    const std::vector<LabeledModule> original = {sample_with_cf(value)};
    const auto parsed = ground_truth_from_text(ground_truth_to_text(original));
    ASSERT_TRUE(parsed.has_value());
    // Exact-bit compare, deliberately not EXPECT_DOUBLE_EQ (4-ulp slack).
    EXPECT_EQ((*parsed)[0].min_cf, value);
    // Stability: a second save/load cycle produces identical bytes.
    EXPECT_EQ(ground_truth_to_text(*parsed), ground_truth_to_text(original));
  }
}

TEST(Serialize, RejectsWhitespaceModuleNamesAtSave) {
  // The text row format is whitespace-delimited; a name with a space would
  // shift every following field on load. Both writers refuse up front.
  for (const char* name : {"bad name", "tab\tname", "line\nname", "#lead"}) {
    std::vector<LabeledModule> samples = {sample_with_cf(1.5)};
    samples[0].name = name;
    EXPECT_THROW((void)ground_truth_to_text(samples), CheckError) << name;
    EXPECT_THROW((void)ground_truth_to_binary(samples), CheckError) << name;
  }

  ModuleCache cache;
  ImplementedBlock b;
  b.name = "spaced name";
  b.macro.name = b.name;
  b.macro.footprint.height = 1;
  b.macro.footprint.kinds = {ColumnKind::ClbL};
  cache.restore(std::move(b));
  EXPECT_THROW((void)module_cache_to_text(cache), CheckError);
  EXPECT_THROW((void)module_cache_to_binary(cache), CheckError);
}

TEST(Serialize, RejectsNegativeFooterCounts) {
  // `stream >> size_t` wraps "-1" to 2^64-1; the from_chars-based parser
  // must reject the sign outright instead of attempting a giant reserve.
  std::string text = ground_truth_to_text({sample_with_cf(1.5)});
  const std::size_t footer = text.rfind("# samples 1");
  ASSERT_NE(footer, std::string::npos);
  text.replace(footer, std::string("# samples 1").size(), "# samples -1");
  EXPECT_FALSE(ground_truth_from_text(text).has_value());
}

TEST(Serialize, BinaryGroundTruthRoundTripsAndAutoDetects) {
  const std::vector<LabeledModule> original = small_truth();
  ASSERT_FALSE(original.empty());
  const std::string binary = ground_truth_to_binary(original);
  const auto parsed = ground_truth_from_binary(binary);
  ASSERT_TRUE(parsed.has_value());
  // Byte-identity through the text serialiser covers every field at once.
  EXPECT_EQ(ground_truth_to_text(*parsed), ground_truth_to_text(original));

  // Saved binary, loaded through the same auto-detecting entry point the
  // text files use.
  const std::string path = "/tmp/mf_gt_test_bin.mfb";
  ASSERT_TRUE(save_ground_truth(path, original, PersistFormat::Binary));
  const auto loaded = load_ground_truth(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(ground_truth_to_text(*loaded), ground_truth_to_text(original));
}

TEST(Serialize, BinaryGroundTruthRejectsTrailingGarbage) {
  // A well-formed container whose samples section carries extra bytes after
  // the last sample must be rejected (mirrors the text footer contract).
  const std::string binary = ground_truth_to_binary({sample_with_cf(1.5)});
  ASSERT_TRUE(ground_truth_from_binary(binary).has_value());
  // Appending to the *container* breaks the footer scan; corrupting inside
  // is covered by test_corruption. Here: rebuild with a tampered section via
  // the public writer is impossible by design, so assert the all-or-nothing
  // contract instead -- a truncated binary never half-loads.
  for (std::size_t n : {binary.size() / 2, binary.size() - 1}) {
    EXPECT_FALSE(ground_truth_from_binary(binary.substr(0, n)).has_value());
  }
}

TEST(Serialize, BinaryModuleCacheRoundTripsAndAutoDetects) {
  const Device dev = xc7z020_model();
  BlockDesign design;
  Rng rng(5);
  MixedParams p;
  p.luts = 90;
  p.ffs = 70;
  design.unique_modules.push_back(gen_mixed(p, rng));
  design.unique_modules.back().name = "bin_block";
  design.instances.push_back(BlockInstance{"i0", 0});
  CfPolicy policy;
  policy.constant_cf = 1.8;
  RwFlowOptions opts;
  opts.compute_timing = false;
  opts.run_stitch = false;
  ModuleCache cache;
  ASSERT_EQ(cache.run(design, dev, policy, opts).failed_blocks, 0);

  ModuleCache reloaded;
  const CacheLoadStats stats =
      module_cache_from_binary(module_cache_to_binary(cache), reloaded);
  EXPECT_TRUE(stats.header_ok);
  EXPECT_TRUE(stats.complete);
  EXPECT_EQ(stats.loaded, 1);
  EXPECT_EQ(stats.corrupted, 0);
  EXPECT_EQ(module_cache_to_text(reloaded), module_cache_to_text(cache));

  const std::string path = "/tmp/mf_cache_test_bin.mfb";
  ASSERT_TRUE(save_module_cache(path, cache, PersistFormat::Binary));
  ModuleCache from_file;
  const CacheLoadStats file_stats = load_module_cache(path, from_file);
  std::remove(path.c_str());
  EXPECT_TRUE(file_stats.complete);
  EXPECT_EQ(module_cache_to_text(from_file), module_cache_to_text(cache));
}

TEST(Serialize, TextBinaryTextIsByteIdentical) {
  // The lossless-conversion contract `macroflow convert` rests on: parsing
  // text, re-encoding through the binary container, and re-serialising must
  // reproduce the original text byte for byte.
  const std::vector<LabeledModule> original = small_truth();
  const std::string text = ground_truth_to_text(original);
  const auto via_binary =
      ground_truth_from_binary(ground_truth_to_binary(*ground_truth_from_text(text)));
  ASSERT_TRUE(via_binary.has_value());
  EXPECT_EQ(ground_truth_to_text(*via_binary), text);
}

}  // namespace
}  // namespace mf
