#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "ml/dataset.hpp"
#include "ml/dtree.hpp"
#include "ml/linreg.hpp"
#include "ml/metrics.hpp"
#include "ml/mlp.hpp"
#include "ml/rforest.hpp"
#include "ml/scaler.hpp"

namespace mf {
namespace {

/// y = 2*x0 - 3*x1 + 0.5 + noise
std::pair<std::vector<std::vector<double>>, std::vector<double>>
linear_data(std::size_t n, double noise, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(-2.0, 2.0);
    const double b = rng.uniform(-2.0, 2.0);
    x.push_back({a, b});
    y.push_back(2.0 * a - 3.0 * b + 0.5 + noise * rng.normal());
  }
  return {x, y};
}

/// Piecewise target only trees can express exactly.
std::pair<std::vector<std::vector<double>>, std::vector<double>>
step_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(0.0, 1.0);
    const double b = rng.uniform(0.0, 1.0);
    x.push_back({a, b});
    y.push_back((a > 0.5 ? 1.0 : 0.0) + (b > 0.3 ? 0.5 : 0.0) + 1.0);
  }
  return {x, y};
}

TEST(Scaler, ZeroMeanUnitVariance) {
  StandardScaler scaler;
  const auto [x, y] = linear_data(500, 0.0, 1);
  scaler.fit(x);
  const auto xs = scaler.transform(x);
  double mean = 0.0;
  double var = 0.0;
  for (const auto& row : xs) mean += row[0];
  mean /= static_cast<double>(xs.size());
  for (const auto& row : xs) var += (row[0] - mean) * (row[0] - mean);
  var /= static_cast<double>(xs.size());
  EXPECT_NEAR(mean, 0.0, 1e-9);
  EXPECT_NEAR(var, 1.0, 1e-9);
}

TEST(Scaler, ConstantFeatureSurvives) {
  StandardScaler scaler;
  scaler.fit({{1.0, 5.0}, {2.0, 5.0}, {3.0, 5.0}});
  const auto out = scaler.transform(std::vector<double>{2.0, 5.0});
  EXPECT_TRUE(std::isfinite(out[1]));
  EXPECT_NEAR(out[1], 0.0, 1e-9);
}

TEST(LinReg, RecoversLinearFunction) {
  const auto [x, y] = linear_data(400, 0.0, 2);
  LinearRegression model;
  model.fit(x, y);
  EXPECT_NEAR(model.predict({1.0, 1.0}), -0.5, 1e-6);
  EXPECT_NEAR(model.predict({0.0, 0.0}), 0.5, 1e-6);
}

TEST(LinReg, RobustToNoise) {
  const auto [x, y] = linear_data(2000, 0.1, 3);
  LinearRegression model;
  model.fit(x, y);
  EXPECT_NEAR(model.predict({1.0, -1.0}), 5.5, 0.05);
}

TEST(LinReg, HandlesCollinearFeatures) {
  // x1 == x0: ridge keeps the normal equations solvable.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    x.push_back({a, a});
    y.push_back(3.0 * a);
  }
  LinearRegression model(1e-6);
  EXPECT_NO_THROW(model.fit(x, y));
  EXPECT_NEAR(model.predict({0.5, 0.5}), 1.5, 1e-3);
}

TEST(DTree, FitsStepFunctionExactly) {
  const auto [x, y] = step_data(500, 5);
  DecisionTree tree;
  Rng rng(1);
  tree.fit(x, y, {}, rng);
  const auto pred = tree.predict(x);
  EXPECT_LT(mean_squared_error(pred, y), 1e-9);
}

TEST(DTree, RespectsMaxDepth) {
  const auto [x, y] = linear_data(500, 0.0, 6);
  DecisionTree tree;
  DTreeOptions opts;
  opts.max_depth = 3;
  Rng rng(1);
  tree.fit(x, y, opts, rng);
  EXPECT_LE(tree.depth(), 3);
}

TEST(DTree, ImportanceSumsToOne) {
  const auto [x, y] = step_data(500, 7);
  DecisionTree tree;
  Rng rng(1);
  tree.fit(x, y, {}, rng);
  const auto& imp = tree.feature_importance();
  double total = 0.0;
  for (double v : imp) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Feature 0 explains the bigger step (1.0 vs 0.5): higher importance.
  EXPECT_GT(imp[0], imp[1]);
}

TEST(DTree, ConstantTargetIsLeaf) {
  std::vector<std::vector<double>> x = {{1.0}, {2.0}, {3.0}};
  std::vector<double> y = {5.0, 5.0, 5.0};
  DecisionTree tree;
  Rng rng(1);
  tree.fit(x, y, {}, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{9.0}), 5.0);
}

TEST(RForest, BeatsSingleTreeOnNoisyData) {
  Rng noise_rng(8);
  auto [x, y] = step_data(600, 8);
  for (double& v : y) v += 0.2 * noise_rng.normal();
  // Held-out set.
  const auto [xt, yt_clean] = step_data(300, 9);

  DecisionTree tree;
  Rng rng(1);
  tree.fit(x, y, {}, rng);
  RandomForest forest;
  RForestOptions opts;
  opts.trees = 60;
  forest.fit(x, y, opts);

  const double tree_err = mean_squared_error(tree.predict(xt), yt_clean);
  const double forest_err = mean_squared_error(forest.predict(xt), yt_clean);
  EXPECT_LT(forest_err, tree_err);
}

TEST(RForest, ImportanceNormalised) {
  const auto [x, y] = step_data(400, 10);
  RandomForest forest;
  RForestOptions opts;
  opts.trees = 40;
  forest.fit(x, y, opts);
  double total = 0.0;
  for (double v : forest.feature_importance()) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(RForest, DeterministicPerSeed) {
  const auto [x, y] = step_data(200, 11);
  RForestOptions opts;
  opts.trees = 10;
  RandomForest a;
  RandomForest b;
  a.fit(x, y, opts);
  b.fit(x, y, opts);
  const std::vector<double> probe{0.4, 0.6};
  EXPECT_DOUBLE_EQ(a.predict(probe), b.predict(probe));
}

TEST(Mlp, LossDecreasesDuringTraining) {
  const auto [x, y] = linear_data(300, 0.05, 12);
  Mlp mlp;
  MlpOptions opts;
  opts.epochs = 100;
  mlp.fit(x, y, opts);
  const auto& loss = mlp.training_loss();
  ASSERT_EQ(loss.size(), 100u);
  EXPECT_LT(loss.back(), loss.front() * 0.2);
}

TEST(Mlp, ApproximatesSmoothFunction) {
  const auto [x, y] = linear_data(600, 0.0, 13);
  Mlp mlp;
  MlpOptions opts;
  opts.epochs = 300;
  mlp.fit(x, y, opts);
  const double pred = mlp.predict({1.0, 1.0});
  EXPECT_NEAR(pred, -0.5, 0.25);
}

TEST(Metrics, MeanAndMedianRelativeError) {
  const std::vector<double> truth = {1.0, 2.0, 4.0};
  const std::vector<double> pred = {1.1, 2.0, 3.0};
  EXPECT_NEAR(mean_relative_error(pred, truth), (0.1 + 0.0 + 0.25) / 3.0,
              1e-12);
  EXPECT_NEAR(median_relative_error(pred, truth), 0.1, 1e-12);
}

TEST(Metrics, MedianEvenCount) {
  const std::vector<double> truth = {1.0, 1.0, 1.0, 1.0};
  const std::vector<double> pred = {1.1, 1.2, 1.3, 1.4};
  EXPECT_NEAR(median_relative_error(pred, truth), 0.25, 1e-12);
}

TEST(Metrics, MedianDegenerateSizes) {
  // Size 1: the single element. Size 2: mean of both (the smallest even
  // input exercises the two-order-statistics path with mid-1 == 0).
  EXPECT_DOUBLE_EQ(median_relative_error({1.3}, {1.0}), 0.3);
  EXPECT_NEAR(median_relative_error({1.1, 1.5}, {1.0, 1.0}), 0.3, 1e-12);
}

TEST(Metrics, UniformContractRejectsEmptyAndMismatchedInputs) {
  // All three metrics share one guard set: empty input and size mismatch
  // throw CheckError instead of dividing by zero / reading out of range.
  const std::vector<double> empty;
  const std::vector<double> one = {1.0};
  const std::vector<double> two = {1.0, 2.0};
  EXPECT_THROW(mean_relative_error(empty, empty), CheckError);
  EXPECT_THROW(median_relative_error(empty, empty), CheckError);
  EXPECT_THROW(mean_squared_error(empty, empty), CheckError);
  EXPECT_THROW(mean_relative_error(one, two), CheckError);
  EXPECT_THROW(median_relative_error(one, two), CheckError);
  EXPECT_THROW(mean_squared_error(one, two), CheckError);
}

TEST(Metrics, RelativeMetricsRequirePositiveTruth) {
  // CFs are strictly positive; a zero or negative truth value is corrupt
  // input, not a case to silently produce inf/NaN for. MSE has no such
  // restriction.
  const std::vector<double> pred = {1.0, 2.0};
  const std::vector<double> zero_truth = {1.0, 0.0};
  const std::vector<double> neg_truth = {-1.0, 2.0};
  EXPECT_THROW(mean_relative_error(pred, zero_truth), CheckError);
  EXPECT_THROW(median_relative_error(pred, zero_truth), CheckError);
  EXPECT_THROW(mean_relative_error(pred, neg_truth), CheckError);
  EXPECT_THROW(median_relative_error(pred, neg_truth), CheckError);
  EXPECT_DOUBLE_EQ(mean_squared_error(pred, zero_truth), (0.0 + 4.0) / 2.0);
  EXPECT_DOUBLE_EQ(mean_squared_error(pred, neg_truth), (4.0 + 0.0) / 2.0);
}

TEST(Dataset, BalanceCapsPerBin) {
  Dataset data;
  data.feature_names = {"x"};
  Rng rng(14);
  for (int i = 0; i < 300; ++i) data.add({1.0 * i}, 0.9, "a");
  for (int i = 0; i < 40; ++i) data.add({2.0 * i}, 1.3, "b");
  Rng balance_rng(15);
  const Dataset balanced = balance_by_target(data, 0.02, 75, balance_rng);
  int at_09 = 0;
  int at_13 = 0;
  for (double v : balanced.y) {
    if (v < 1.0) ++at_09;
    if (v > 1.0) ++at_13;
  }
  EXPECT_EQ(at_09, 75);
  EXPECT_EQ(at_13, 40);
}

TEST(Dataset, SplitSizesAndDisjoint) {
  Dataset data;
  data.feature_names = {"x"};
  for (int i = 0; i < 100; ++i) {
    data.add({static_cast<double>(i)}, 1.0, std::to_string(i));
  }
  Rng rng(16);
  const auto [train, test] = train_test_split(data, 0.8, rng);
  EXPECT_EQ(train.size(), 80u);
  EXPECT_EQ(test.size(), 20u);
  std::set<std::string> labels(train.labels.begin(), train.labels.end());
  for (const std::string& l : test.labels) {
    EXPECT_EQ(labels.count(l), 0u);
  }
}

TEST(Dataset, SubsetPreservesOrder) {
  Dataset data;
  data.feature_names = {"x"};
  for (int i = 0; i < 10; ++i) {
    data.add({static_cast<double>(i)}, i, std::to_string(i));
  }
  const Dataset sub = data.subset({2, 5, 7});
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub.y[0], 2.0);
  EXPECT_EQ(sub.y[2], 7.0);
}

}  // namespace
}  // namespace mf
