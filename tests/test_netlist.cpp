#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

#include "netlist/stats.hpp"

namespace mf {
namespace {

TEST(Netlist, ConnectTracksSinksAndDriver) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const CellId lut = nl.add_cell(CellKind::Lut);
  nl.connect_input(lut, a);
  const NetId out = nl.add_net();
  nl.set_output(lut, out);
  EXPECT_EQ(nl.net(a).sinks.size(), 1u);
  EXPECT_EQ(nl.net(a).sinks.front(), lut);
  EXPECT_EQ(nl.net(out).driver, lut);
  EXPECT_EQ(nl.cell(lut).out, out);
}

TEST(Netlist, DoubleDriverRejected) {
  Netlist nl;
  const NetId n = nl.add_net();
  const CellId a = nl.add_cell(CellKind::Lut);
  const CellId b = nl.add_cell(CellKind::Lut);
  nl.set_output(a, n);
  EXPECT_THROW(nl.set_output(b, n), CheckError);
}

TEST(Netlist, ControlSetsAreInterned) {
  Netlist nl;
  const NetId clk = nl.add_net("clk", true);
  const NetId rst = nl.add_net("rst");
  const ControlSetId a = nl.make_control_set(clk, rst, kInvalidId);
  const ControlSetId b = nl.make_control_set(clk, rst, kInvalidId);
  const ControlSetId c = nl.make_control_set(clk, kInvalidId, kInvalidId);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(nl.num_control_sets(), 2u);
}

TEST(Netlist, BindControlSetCountsLoads) {
  Netlist nl;
  const NetId clk = nl.add_net("clk", true);
  const NetId rst = nl.add_net("rst");
  const ControlSetId cs = nl.make_control_set(clk, rst, kInvalidId);
  for (int i = 0; i < 5; ++i) {
    const CellId ff = nl.add_cell(CellKind::Ff);
    nl.bind_control_set(ff, cs);
  }
  EXPECT_EQ(nl.net(rst).control_loads, 5);
  EXPECT_EQ(nl.net(rst).fanout(), 5);
  EXPECT_EQ(nl.net(clk).control_loads, 5);
}

TEST(Netlist, ControlSetOnLutRejected) {
  Netlist nl;
  const NetId clk = nl.add_net("clk", true);
  const ControlSetId cs = nl.make_control_set(clk, kInvalidId, kInvalidId);
  const CellId lut = nl.add_cell(CellKind::Lut);
  EXPECT_THROW(nl.bind_control_set(lut, cs), CheckError);
}

TEST(Netlist, RewireInputMovesSink) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const CellId lut = nl.add_cell(CellKind::Lut);
  nl.connect_input(lut, a);
  nl.rewire_input(lut, 0, b);
  EXPECT_TRUE(nl.net(a).sinks.empty());
  EXPECT_EQ(nl.net(b).sinks.size(), 1u);
  EXPECT_EQ(nl.cell(lut).inputs.front(), b);
}

TEST(Netlist, RemoveCellsRemapsEverything) {
  Netlist nl;
  const NetId in = nl.add_net("in");
  const CellId dead = nl.add_cell(CellKind::Lut);
  nl.connect_input(dead, in);
  const NetId dead_out = nl.add_net();
  nl.set_output(dead, dead_out);

  const CellId kept = nl.add_cell(CellKind::Lut);
  nl.connect_input(kept, in);
  const NetId kept_out = nl.add_net();
  nl.set_output(kept, kept_out);

  std::vector<bool> flags = {true, false};
  EXPECT_EQ(nl.remove_cells(flags), 1u);
  ASSERT_EQ(nl.num_cells(), 1u);
  EXPECT_EQ(nl.net(kept_out).driver, 0);
  EXPECT_EQ(nl.net(dead_out).driver, kInvalidId);
  ASSERT_EQ(nl.net(in).sinks.size(), 1u);
  EXPECT_EQ(nl.net(in).sinks.front(), 0);
}

TEST(Netlist, ChainOnlyOnCarry) {
  Netlist nl;
  const CellId carry = nl.add_cell(CellKind::Carry4);
  nl.set_chain(carry, 0, 0);
  EXPECT_EQ(nl.cell(carry).chain, 0);
  const CellId lut = nl.add_cell(CellKind::Lut);
  EXPECT_THROW(nl.set_chain(lut, 1, 0), CheckError);
}

TEST(Netlist, OutputMarkingIsIdempotent) {
  Netlist nl;
  const NetId n = nl.add_net();
  nl.mark_output(n);
  nl.mark_output(n);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_TRUE(nl.is_output(n));
}

TEST(Stats, CountsKindsAndChains) {
  Netlist nl;
  const NetId clk = nl.add_net("clk", true);
  const ControlSetId cs = nl.make_control_set(clk, kInvalidId, kInvalidId);
  for (int i = 0; i < 3; ++i) nl.add_cell(CellKind::Lut);
  for (int i = 0; i < 2; ++i) {
    nl.bind_control_set(nl.add_cell(CellKind::Ff), cs);
  }
  for (int pos = 0; pos < 4; ++pos) {
    const CellId c = nl.add_cell(CellKind::Carry4);
    nl.set_chain(c, 7, pos);
  }
  const CellId short_chain = nl.add_cell(CellKind::Carry4);
  nl.set_chain(short_chain, 8, 0);
  nl.add_cell(CellKind::Srl);
  nl.add_cell(CellKind::Bram36);

  const NetlistStats s = compute_stats(nl);
  EXPECT_EQ(s.luts, 3);
  EXPECT_EQ(s.ffs, 2);
  EXPECT_EQ(s.carry4, 5);
  EXPECT_EQ(s.srls, 1);
  EXPECT_EQ(s.bram36, 1);
  EXPECT_EQ(s.control_sets, 1);
  ASSERT_EQ(s.carry_chains.size(), 2u);
  EXPECT_EQ(s.carry_chains[0], 4);  // sorted descending
  EXPECT_EQ(s.carry_chains[1], 1);
  EXPECT_EQ(s.longest_chain(), 4);
}

TEST(Stats, MaxFanoutIgnoresClock) {
  Netlist nl;
  const NetId clk = nl.add_net("clk", true);
  const NetId data = nl.add_net("d");
  const ControlSetId cs = nl.make_control_set(clk, kInvalidId, kInvalidId);
  for (int i = 0; i < 10; ++i) {
    const CellId ff = nl.add_cell(CellKind::Ff);
    nl.connect_input(ff, data);
    nl.bind_control_set(ff, cs);
  }
  const NetlistStats s = compute_stats(nl);
  // clk has 10 control loads but is excluded; data has 10 sinks.
  EXPECT_EQ(s.max_fanout, 10);
}

TEST(Stats, Bram36Equivalents) {
  NetlistStats s;
  s.bram18 = 3;
  s.bram36 = 1;
  EXPECT_EQ(s.bram36_equiv(), 3);  // 1 + ceil(3/2)
}

}  // namespace
}  // namespace mf
