#include "rtlgen/generators.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "netlist/stats.hpp"
#include "rtlgen/sweep.hpp"
#include "synth/optimize.hpp"

namespace mf {
namespace {

NetlistStats stats_of(Module module) {
  optimize(module.netlist);
  return compute_stats(module.netlist);
}

TEST(ShiftRegGen, HonoursParameters) {
  Rng rng(1);
  const ShiftRegParams p{8, 16, 4, 3};
  const NetlistStats s = stats_of(gen_shiftreg(p, rng));
  EXPECT_EQ(s.ffs, 8 * 16);
  EXPECT_EQ(s.control_sets, 4);
  EXPECT_EQ(s.luts, 8);  // one head LUT per chain
  EXPECT_EQ(s.carry4, 0);
  EXPECT_EQ(s.srls, 0);  // "tool attribute" forces FF mapping
}

TEST(ShiftRegGen, ControlNetsHaveHighFanout) {
  Rng rng(2);
  const ShiftRegParams p{32, 16, 1, 2};
  const NetlistStats s = stats_of(gen_shiftreg(p, rng));
  // One reset over 512 FFs dominates fanout.
  EXPECT_GE(s.max_fanout, 512);
}

TEST(LutRamGen, RegisterFree) {
  Rng rng(3);
  const LutRamParams p{8, 128};
  const NetlistStats s = stats_of(gen_lutram(p, rng));
  EXPECT_EQ(s.ffs, 0);
  EXPECT_EQ(s.lutrams, 8 * 4);  // width * ceil(128/32)
  EXPECT_GT(s.luts, 0);         // read muxes
}

TEST(CarryGen, CarryDominated) {
  Rng rng(4);
  const CarryParams p{2, 16, false};
  Module m = gen_carry(p, rng);
  optimize(m.netlist);
  const NetlistStats s = compute_stats(m.netlist);
  EXPECT_GT(s.carry4, 10);
  EXPECT_GT(static_cast<int>(s.carry_chains.size()), 5);
  EXPECT_EQ(s.ffs, 0);
}

TEST(CarryGen, RegisteredOutputAddsFfs) {
  Rng rng(5);
  const NetlistStats without = stats_of(gen_carry({2, 8, false}, rng));
  const NetlistStats with = stats_of(gen_carry({2, 8, true}, rng));
  EXPECT_EQ(without.ffs, 0);
  EXPECT_EQ(with.ffs, 8);
}

TEST(LfsrGen, MixesAllResourceClasses) {
  Rng rng(6);
  const LfsrParams p{4, 16, 4, 2, 2};
  const NetlistStats s = stats_of(gen_lfsr(p, rng));
  EXPECT_GT(s.ffs, 4 * 16);  // register body + counters
  EXPECT_GT(s.luts, 0);
  EXPECT_GT(s.carry4, 0);
  EXPECT_EQ(s.srls, 4 * 2);
  EXPECT_EQ(s.control_sets, 2);
}

TEST(MixedGen, ApproximatesBudgets) {
  Rng rng(7);
  MixedParams p;
  p.luts = 400;
  p.ffs = 300;
  p.carry_adders = 2;
  p.carry_width = 12;
  p.srls = 25;
  p.control_sets = 5;
  const NetlistStats s = stats_of(gen_mixed(p, rng));
  EXPECT_NEAR(s.luts, 400, 60);
  EXPECT_GE(s.ffs, 300);
  EXPECT_EQ(s.srls, 25);
  EXPECT_EQ(s.control_sets, 5);
  EXPECT_EQ(static_cast<int>(s.carry_chains.size()), 2);
}

TEST(MixedGen, FanoutBoostRaisesMaxFanout) {
  Rng rng(8);
  MixedParams base;
  base.luts = 300;
  base.ffs = 100;
  base.fanout_boost = 0;
  MixedParams boosted = base;
  boosted.fanout_boost = 150;
  Rng rng2(8);
  const NetlistStats sb = stats_of(gen_mixed(base, rng));
  const NetlistStats sf = stats_of(gen_mixed(boosted, rng2));
  EXPECT_GE(sf.max_fanout, 140);  // the boost net collects ~150 loads
  EXPECT_GT(sf.max_fanout, sb.max_fanout);
}

TEST(MixedGen, HardBlocks) {
  Rng rng(9);
  MixedParams p;
  p.luts = 50;
  p.ffs = 20;
  p.bram = 3;
  p.dsp = 2;
  const NetlistStats s = stats_of(gen_mixed(p, rng));
  EXPECT_EQ(s.bram36, 3);
  EXPECT_EQ(s.dsp, 2);
}

TEST(Sweep, ProducesRequestedCountAndAllFamilies) {
  // The corner-case grids hold ~600 specs; 800 guarantees Mixed appears.
  const std::vector<GenSpec> specs = dataset_sweep({800, 42});
  EXPECT_EQ(specs.size(), 800u);
  bool families[7] = {};
  for (const GenSpec& spec : specs) {
    families[static_cast<int>(spec.kind)] = true;
  }
  for (bool seen : families) EXPECT_TRUE(seen);
}

TEST(Sweep, NamesAreUnique) {
  const std::vector<GenSpec> specs = dataset_sweep({800, 42});
  std::set<std::string> names;
  for (const GenSpec& spec : specs) names.insert(spec.name);
  EXPECT_EQ(names.size(), specs.size());
}

TEST(Sweep, RealizeIsDeterministic) {
  const std::vector<GenSpec> specs = dataset_sweep({2000, 42});
  const GenSpec& spec = specs[1900];  // a random mixed spec
  Module a = realize(spec);
  Module b = realize(spec);
  EXPECT_EQ(a.netlist.num_cells(), b.netlist.num_cells());
  EXPECT_EQ(a.netlist.num_nets(), b.netlist.num_nets());
  EXPECT_EQ(a.params, b.params);
}

TEST(Sweep, SizesStayWithinPaperRange) {
  // Figure 7: modules range from ~12 LUTs to ~5,000 LUTs; Section VI-C: 85%
  // below 2,500 LUTs.
  const std::vector<GenSpec> specs = dataset_sweep({2000, 42});
  int below_2500 = 0;
  int total = 0;
  for (std::size_t i = 0; i < specs.size(); i += 20) {
    Module m = realize(specs[i]);
    optimize(m.netlist);
    const NetlistStats s = compute_stats(m.netlist);
    const int lut_sites = s.luts + s.m_lut_cells();
    EXPECT_LE(lut_sites, 13000) << specs[i].name;
    if (lut_sites <= 2500) ++below_2500;
    ++total;
  }
  EXPECT_GT(static_cast<double>(below_2500) / total, 0.75);
}

class GeneratorDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorDeterminism, SameSeedSameNetlist) {
  const std::vector<GenSpec> specs = dataset_sweep({2000, 42});
  const std::size_t index =
      static_cast<std::size_t>(GetParam()) * specs.size() / 8;
  const Module a = realize(specs[index]);
  const Module b = realize(specs[index]);
  ASSERT_EQ(a.netlist.num_cells(), b.netlist.num_cells());
  for (std::size_t i = 0; i < a.netlist.num_cells(); ++i) {
    const Cell& ca = a.netlist.cell(static_cast<CellId>(i));
    const Cell& cb = b.netlist.cell(static_cast<CellId>(i));
    ASSERT_EQ(ca.kind, cb.kind);
    ASSERT_EQ(ca.inputs, cb.inputs);
    ASSERT_EQ(ca.control_set, cb.control_set);
  }
}

INSTANTIATE_TEST_SUITE_P(AcrossSweep, GeneratorDeterminism,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace mf
