#include "netlist/writer.hpp"

#include <gtest/gtest.h>

#include "fabric/catalog.hpp"
#include "netlist/builder.hpp"
#include "nn/cnv_w1a1.hpp"
#include "rtlgen/generators.hpp"

namespace mf {
namespace {

Module tiny_module() {
  Module m;
  m.name = "tiny";
  NetlistBuilder b(m.netlist);
  const ControlSetId cs = b.control_set(b.input("rst"), b.input("en"));
  const NetId x = b.input("x");
  const NetId y = b.input("y");
  const NetId q = b.ff(b.lut({x, y}), cs);
  m.netlist.mark_output(q);
  return m;
}

TEST(VerilogWriter, EmitsModuleSkeleton) {
  const std::string v = write_verilog(tiny_module());
  EXPECT_NE(v.find("module tiny ("), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("input wire x"), std::string::npos);
  EXPECT_NE(v.find("output wire"), std::string::npos);
}

TEST(VerilogWriter, EmitsPrimitives) {
  const std::string v = write_verilog(tiny_module());
  EXPECT_NE(v.find("LUT2"), std::string::npos);
  EXPECT_NE(v.find("FDRE"), std::string::npos);
  // Control pins rendered.
  EXPECT_NE(v.find(".C(clk)"), std::string::npos);
  EXPECT_NE(v.find(".R(rst)"), std::string::npos);
  EXPECT_NE(v.find(".CE(en)"), std::string::npos);
}

TEST(VerilogWriter, CellCountMatchesInstances) {
  Rng rng(1);
  Module m = gen_carry({1, 8, true}, rng);
  m.name = "c";
  const std::string v = write_verilog(m);
  std::size_t instances = 0;
  for (std::size_t pos = v.find(" u"); pos != std::string::npos;
       pos = v.find(" u", pos + 1)) {
    if (std::isdigit(static_cast<unsigned char>(v[pos + 2]))) ++instances;
  }
  EXPECT_EQ(instances, m.netlist.num_cells());
  EXPECT_NE(v.find("CARRY4"), std::string::npos);
}

TEST(DotWriter, OneNodePerInstance) {
  const CnvDesign design = build_cnv_w1a1();
  const std::string dot = write_dot(design);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  std::size_t nodes = 0;
  for (std::size_t pos = dot.find("[label="); pos != std::string::npos;
       pos = dot.find("[label=", pos + 1)) {
    ++nodes;
  }
  EXPECT_EQ(nodes, design.instances.size());
  EXPECT_NE(dot.find("weights_14"), std::string::npos);
}

TEST(XdcWriter, PlacedBlocksGetPBlocks) {
  const Device dev = xc7z020_model();
  StitchProblem problem;
  Macro macro;
  macro.name = "m";
  macro.pblock = PBlock{0, 2, 0, 4};
  macro.footprint = footprint_of(dev, macro.pblock, false);
  problem.macros.push_back(macro);
  problem.instances.push_back(BlockInstance{"m_i0", 0});
  problem.instances.push_back(BlockInstance{"m_i1", 0});

  std::vector<BlockPlacement> positions(2);
  positions[0] = {3, 10};
  // instance 1 unplaced.
  const std::string xdc = write_xdc(problem, positions);
  EXPECT_NE(xdc.find("create_pblock pblock_m_i0"), std::string::npos);
  EXPECT_NE(xdc.find("SLICE_X3Y10:SLICE_X5Y14"), std::string::npos);
  EXPECT_NE(xdc.find("# UNPLACED: m_i1"), std::string::npos);
  EXPECT_EQ(xdc.find("create_pblock pblock_m_i1"), std::string::npos);
}

TEST(XdcWriter, SizeMismatchRejected) {
  StitchProblem problem;
  problem.macros.push_back(Macro{});
  problem.instances.push_back(BlockInstance{"x", 0});
  std::vector<BlockPlacement> wrong;  // empty
  EXPECT_THROW(write_xdc(problem, wrong), CheckError);
}

}  // namespace
}  // namespace mf
