// Flow-level coverage for the estimator policy, search knobs, and the
// TFC/cnv designs under different CF policies.

#include <gtest/gtest.h>

#include "fabric/catalog.hpp"
#include "flow/ground_truth.hpp"
#include "flow/rw_flow.hpp"
#include "nn/cnv_w1a1.hpp"
#include "synth/optimize.hpp"

namespace mf {
namespace {

class PolicyFixture : public ::testing::Test {
 protected:
  static const CfEstimator& estimator() {
    static const CfEstimator instance = [] {
      const Device dev = xc7z020_model();
      const GroundTruth truth =
          build_ground_truth(dataset_sweep({300, 21}), dev);
      CfEstimator::Options options;
      options.rforest.trees = 60;
      CfEstimator est(EstimatorKind::RandomForest, FeatureSet::All, options);
      est.train(make_dataset(FeatureSet::All, truth.samples));
      return est;
    }();
    return instance;
  }
};

TEST_F(PolicyFixture, EstimatorPolicyRunsTheTfcFlow) {
  const Device dev = xc7z020_model();
  const BlockDesign tfc = build_tfc_w1a1();
  RwFlowOptions opts;
  opts.compute_timing = false;
  opts.stitch.moves_per_temp = 100;
  opts.stitch.cooling = 0.8;
  CfPolicy policy;
  policy.mode = CfPolicy::Mode::Estimator;
  policy.estimator = &estimator();
  const RwFlowResult r = run_rw_flow(tfc, dev, policy, opts);
  EXPECT_EQ(r.failed_blocks, 0);
  EXPECT_EQ(r.stitch.unplaced, 0);
  for (const ImplementedBlock& blk : r.blocks) {
    EXPECT_GT(blk.seed_cf, 0.4) << blk.name;
    EXPECT_LT(blk.seed_cf, 3.0) << blk.name;
  }
}

TEST_F(PolicyFixture, EstimatorPolicyRequiresTrainedEstimator) {
  const Device dev = xc7z020_model();
  const BlockDesign tfc = build_tfc_w1a1();
  CfPolicy policy;
  policy.mode = CfPolicy::Mode::Estimator;
  CfEstimator untrained(EstimatorKind::DecisionTree, FeatureSet::All);
  policy.estimator = &untrained;
  RwFlowOptions opts;
  opts.run_stitch = false;
  EXPECT_THROW(run_rw_flow(tfc, dev, policy, opts), CheckError);
}

TEST(FlowKnobs, DedupeOffCountsEveryRun) {
  // With PBlock dedupe disabled, the min-CF sweep charges one tool run per
  // CF step, like the paper's Vivado loop would.
  const Device dev = xc7z020_model();
  const BlockDesign tfc = build_tfc_w1a1();
  Module module = tfc.unique_modules.front();

  RwFlowOptions base;
  base.run_stitch = false;
  base.compute_timing = false;

  auto runs_with = [&](bool dedupe) {
    Module copy = module;
    optimize(copy.netlist);
    const ResourceReport report = make_report(copy.netlist);
    const ShapeReport shape = quick_place(report);
    CfSearchOptions opts = base.search;
    opts.dedupe_pblocks = dedupe;
    const CfSearchResult r = find_min_cf(copy, report, shape, dev, opts);
    EXPECT_TRUE(r.found);
    return r.tool_runs;
  };
  EXPECT_LE(runs_with(true), runs_with(false));
}

TEST(FlowKnobs, AnchorPolicyPropagatesThroughTheFlow) {
  const Device dev = xc7z020_model();
  const BlockDesign tfc = build_tfc_w1a1();
  RwFlowOptions opts;
  opts.compute_timing = false;
  opts.run_stitch = false;
  opts.search.pblock.policy = AnchorPolicy::MinWaste;
  CfPolicy policy;
  policy.constant_cf = 1.5;
  const RwFlowResult r = run_rw_flow(tfc, dev, policy, opts);
  EXPECT_EQ(r.failed_blocks, 0);

  RwFlowOptions first_fit = opts;
  first_fit.search.pblock.policy = AnchorPolicy::FirstFit;
  const RwFlowResult base = run_rw_flow(tfc, dev, policy, first_fit);

  // MinWaste never covers *more* unneeded hard blocks than first-fit (wide
  // rectangles cannot dodge every special column, so zero is not always
  // achievable).
  for (std::size_t i = 0; i < r.blocks.size(); ++i) {
    if (r.blocks[i].report.uses_bram_or_dsp()) continue;
    const FabricResources tuned = dev.resources_in(r.blocks[i].macro.pblock);
    const FabricResources ff = dev.resources_in(base.blocks[i].macro.pblock);
    EXPECT_LE(tuned.bram36 + tuned.dsp, ff.bram36 + ff.dsp)
        << r.blocks[i].name;
  }
}

TEST(FlowKnobs, StitchCanBeSkipped) {
  const Device dev = xc7z020_model();
  const BlockDesign tfc = build_tfc_w1a1();
  RwFlowOptions opts;
  opts.run_stitch = false;
  opts.compute_timing = false;
  CfPolicy policy;
  policy.constant_cf = 1.5;
  const RwFlowResult r = run_rw_flow(tfc, dev, policy, opts);
  EXPECT_EQ(r.stitch.total_moves, 0);
  EXPECT_FALSE(r.problem.macros.empty());
}

TEST(FlowKnobs, FailedBlocksDropOutOfTheStitchProblem) {
  // Force a failure by capping the search absurdly low: every surviving
  // structure must stay consistent.
  const Device dev = xc7z020_model();
  const BlockDesign tfc = build_tfc_w1a1();
  RwFlowOptions opts;
  opts.compute_timing = false;
  opts.run_stitch = false;
  opts.search.max_cf = 0.4;  // nothing implements
  CfPolicy policy;
  policy.constant_cf = 0.3;
  const RwFlowResult r = run_rw_flow(tfc, dev, policy, opts);
  EXPECT_EQ(r.failed_blocks,
            static_cast<int>(tfc.unique_modules.size()));
  EXPECT_TRUE(r.problem.instances.empty());
  EXPECT_TRUE(r.problem.nets.empty());
}

}  // namespace
}  // namespace mf
