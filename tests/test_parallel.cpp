// Tests for the deterministic parallel flow engine: the ThreadPool itself
// (ordering independence, bounded queue, exception propagation, reuse) and
// the A/B contract that every parallel region in the library -- per-block
// flow, dataset labelling, module-cache runs, forest training -- produces
// bit-identical results at jobs=1 and jobs=8.

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "fabric/catalog.hpp"
#include "flow/ground_truth.hpp"
#include "flow/rw_flow.hpp"
#include "flow/tool_run.hpp"
#include "ml/rforest.hpp"
#include "nn/cnv_w1a1.hpp"
#include "nn/finn_blocks.hpp"
#include "rtlgen/generators.hpp"
#include "rtlgen/sweep.hpp"

namespace mf {
namespace {

// -- ThreadPool -------------------------------------------------------------

TEST(ThreadPool, ResolveJobsConvention) {
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_EQ(resolve_jobs(5), 5);
  EXPECT_GE(resolve_jobs(0), 1);   // auto: hardware concurrency
  EXPECT_GE(resolve_jobs(-3), 1);  // negatives treated as auto
}

TEST(ThreadPool, ForEachFillsEverySlotExactlyOnce) {
  ThreadPool pool(7);
  const std::size_t n = 5000;
  std::vector<std::atomic<int>> writes(n);
  std::vector<std::size_t> slots(n, 0);
  pool.for_each(n, [&](std::size_t i) {
    slots[i] = i * 3 + 1;
    writes[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(writes[i].load(), 1) << i;
    EXPECT_EQ(slots[i], i * 3 + 1) << i;
  }
}

TEST(ThreadPool, BoundedQueueStillCompletesEveryTask) {
  // Queue capacity far below the task count: submit() must block (not drop
  // or grow unbounded) and every task must still run.
  ThreadPool pool(2, /*queue_capacity=*/4);
  std::atomic<int> done{0};
  for (int k = 0; k < 200; ++k) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPool, SubmitExceptionPropagatesToWait) {
  ThreadPool pool(3);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The pool stays usable after a throwing wait().
  std::atomic<int> done{0};
  pool.submit([&done] { ++done; });
  pool.wait();
  EXPECT_EQ(done.load(), 1);
}

TEST(ThreadPool, ForEachRethrowsLowestFailingIndex) {
  // Indices 5, 23 and 90 all fail; a sequential loop would have thrown at
  // index 5, so for_each must surface exactly that exception.
  ThreadPool pool(8);
  try {
    pool.for_each(100, [](std::size_t i) {
      if (i == 5 || i == 23 || i == 90) {
        throw std::runtime_error(std::to_string(i));
      }
    });
    FAIL() << "for_each should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "5");
  }
}

TEST(ThreadPool, ReusableAcrossRegions) {
  ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    std::vector<int> out(64, -1);
    pool.for_each(out.size(), [&](std::size_t i) {
      out[i] = round * 100 + static_cast<int>(i);
    });
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], round * 100 + static_cast<int>(i));
    }
  }
}

TEST(ThreadPool, ParallelForEachSequentialFallback) {
  // jobs <= 1 and count <= 1 never touch a pool: plain loop on this thread.
  std::vector<int> out(10, 0);
  parallel_for_each(1, out.size(), [&](std::size_t i) {
    out[i] = static_cast<int>(i);
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i));
  }
  int calls = 0;
  parallel_for_each(8, 1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, RealExceptionBeatsCancelledErrorSequential) {
  // jobs = 1 is the baseline the pool must reproduce: a sequential loop
  // throws the first exception it reaches, so the runtime_error at index 2
  // surfaces before any higher index can raise CancelledError.
  const auto body = [](std::size_t i) {
    if (i == 2) throw std::runtime_error("boom");
    if (i >= 5) throw CancelledError();
  };
  EXPECT_THROW(parallel_for_each(1, 100, body), std::runtime_error);
}

TEST(ThreadPool, RealExceptionBeatsCancelledErrorParallel) {
  // A pool draining the same region must agree: the lowest-indexed failure
  // is the runtime_error, so a flood of CancelledError from higher indices
  // (a cancelled pool mid-drain) must not mask it.
  const auto body = [](std::size_t i) {
    if (i == 3) throw std::runtime_error("boom");
    if (i >= 10) throw CancelledError();
  };
  try {
    parallel_for_each(8, 200, body);
    FAIL() << "for_each should have thrown";
  } catch (const CancelledError&) {
    FAIL() << "CancelledError from index >= 10 masked the index-3 failure";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(ThreadPool, PureCancelledErrorRegionPropagatesCancelledError) {
  // When cancellation itself is the lowest failure, that is what callers
  // must see (main maps it to exit 130).
  const auto body = [](std::size_t i) {
    if (i >= 1) throw CancelledError();
  };
  EXPECT_THROW(parallel_for_each(8, 64, body), CancelledError);
}

TEST(ThreadPool, ExceptionRecordedBeforeCancelStillPropagates) {
  // Index 0 trips the shared token *and* throws. The token stops every
  // other index from starting, but the recorded exception must still be
  // rethrown -- a cancelled drain never swallows a real failure.
  CancelToken token;
  std::atomic<int> ran{0};
  const auto body = [&](std::size_t i) {
    ran.fetch_add(1);
    if (i == 0) {
      token.cancel();
      throw std::runtime_error("real failure");
    }
  };
  EXPECT_THROW(parallel_for_each(8, 1000, body, &token), std::runtime_error);
  EXPECT_LT(ran.load(), 1000);  // the token cut the region short
}

TEST(ThreadPool, SequentialCancelAfterStopsAtDeterministicIndex) {
  // cancel_after(n) trips on the n-th cancelled() poll; the sequential path
  // polls once before each index, so exactly n - 1 iterations run.
  CancelToken token;
  token.cancel_after(3);
  int ran = 0;
  parallel_for_each(1, 100, [&](std::size_t) { ++ran; }, &token);
  EXPECT_EQ(ran, 2);
}

TEST(ThreadPool, TaskSeedIsPureAndKeySensitive) {
  EXPECT_EQ(task_seed(42, "tree:3"), task_seed(42, "tree:3"));
  EXPECT_NE(task_seed(42, "tree:3"), task_seed(42, "tree:4"));
  EXPECT_NE(task_seed(42, "tree:3"), task_seed(43, "tree:3"));
  // Two Rngs from the same task seed generate identical streams.
  Rng a(task_seed(7, "block_a"));
  Rng b(task_seed(7, "block_a"));
  for (int k = 0; k < 100; ++k) EXPECT_EQ(a.index(1000), b.index(1000));
}

// -- Parallel flow A/B: bit-identical at any jobs value ---------------------

/// Same synthetic design as test_fault_tolerance.cpp: 3 unique blocks.
BlockDesign small_design() {
  BlockDesign design;
  Rng rng(1);
  MixedParams a;
  a.luts = 120;
  a.ffs = 100;
  design.unique_modules.push_back(gen_mixed(a, rng));
  design.unique_modules.back().name = "block_a";
  MixedParams bparams;
  bparams.luts = 60;
  bparams.ffs = 90;
  bparams.carry_adders = 1;
  design.unique_modules.push_back(gen_mixed(bparams, rng));
  design.unique_modules.back().name = "block_b";
  Rng rng2(2);
  design.unique_modules.push_back(gen_mvau({32, 1, 16, 1}, rng2));
  design.unique_modules.back().name = "block_c";
  const int pattern[] = {0, 1, 2, 1, 0, 2, 1, 1};
  for (int i = 0; i < 8; ++i) {
    design.instances.push_back(
        BlockInstance{"i" + std::to_string(i), pattern[i]});
  }
  for (int i = 0; i + 1 < 8; ++i) {
    design.nets.push_back(BlockNet{{i, i + 1}, 1.0});
  }
  return design;
}

RwFlowOptions fast_opts(int jobs) {
  RwFlowOptions opts;
  opts.compute_timing = false;
  opts.stitch.moves_per_temp = 100;
  opts.stitch.cooling = 0.8;
  opts.jobs = jobs;
  return opts;
}

void expect_same_flow(const RwFlowResult& a, const RwFlowResult& b) {
  EXPECT_EQ(a.total_tool_runs, b.total_tool_runs);
  EXPECT_EQ(a.failed_blocks, b.failed_blocks);
  EXPECT_EQ(a.degraded_blocks, b.degraded_blocks);
  EXPECT_EQ(a.errors.size(), b.errors.size());
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    EXPECT_EQ(a.blocks[i].name, b.blocks[i].name);
    EXPECT_EQ(a.blocks[i].status, b.blocks[i].status);
    EXPECT_EQ(a.blocks[i].attempts, b.blocks[i].attempts);
    EXPECT_DOUBLE_EQ(a.blocks[i].seed_cf, b.blocks[i].seed_cf);
    EXPECT_DOUBLE_EQ(a.blocks[i].macro.cf, b.blocks[i].macro.cf);
    EXPECT_EQ(a.blocks[i].macro.tool_runs, b.blocks[i].macro.tool_runs);
    EXPECT_EQ(a.blocks[i].macro.used_slices, b.blocks[i].macro.used_slices);
    EXPECT_TRUE(a.blocks[i].macro.pblock == b.blocks[i].macro.pblock);
  }
  EXPECT_EQ(a.problem.instances.size(), b.problem.instances.size());
  EXPECT_EQ(a.stitch.unplaced, b.stitch.unplaced);
  EXPECT_DOUBLE_EQ(a.stitch.cost, b.stitch.cost);
  EXPECT_DOUBLE_EQ(a.stitch.wirelength, b.stitch.wirelength);
}

TEST(ParallelFlow, CnvFlowBitIdenticalJobs1VsJobs8) {
  // The acceptance A/B on the paper's application design: the whole result
  // -- every macro, the tool-run count, the stitch -- must not move when the
  // per-block loop fans out over 8 workers.
  const Device dev = xc7z020_model();
  const CnvDesign design = build_cnv_w1a1();
  CfPolicy policy;
  policy.constant_cf = 1.5;
  const RwFlowResult seq = run_rw_flow(design, dev, policy, fast_opts(1));
  const RwFlowResult par = run_rw_flow(design, dev, policy, fast_opts(8));
  expect_same_flow(seq, par);
}

TEST(ParallelFlow, ChaosFlowBitIdenticalJobs1VsJobs8) {
  // Fault injection under parallelism: the injector draw is a pure function
  // of (seed, block, ordinal) and the ToolRunner keeps per-block state, so
  // even the chaos stats must agree exactly across thread counts.
  const BlockDesign design = small_design();
  const Device dev = xc7z020_model();
  CfPolicy policy;
  policy.constant_cf = 1.8;
  ToolRunnerOptions ro;
  ro.fault.enabled = true;
  ro.fault.seed = 0xdead;
  ro.fault.p_crash = 0.2;
  ro.fault.p_timeout = 0.15;
  ro.fault.p_spurious_infeasible = 0.15;
  ro.retry.max_attempts_per_check = 4;
  ro.retry.retry_budget_per_block = 8;

  ToolRunner seq_runner(ro);
  RwFlowOptions seq_opts = fast_opts(1);
  seq_opts.search.runner = &seq_runner;
  const RwFlowResult seq = run_rw_flow(design, dev, policy, seq_opts);

  ToolRunner par_runner(ro);
  RwFlowOptions par_opts = fast_opts(8);
  par_opts.search.runner = &par_runner;
  const RwFlowResult par = run_rw_flow(design, dev, policy, par_opts);

  expect_same_flow(seq, par);
  EXPECT_EQ(seq_runner.stats().invocations, par_runner.stats().invocations);
  EXPECT_EQ(seq_runner.stats().completed, par_runner.stats().completed);
  EXPECT_EQ(seq_runner.stats().crashes, par_runner.stats().crashes);
  EXPECT_EQ(seq_runner.stats().timeouts, par_runner.stats().timeouts);
  EXPECT_EQ(seq_runner.stats().spurious, par_runner.stats().spurious);
  EXPECT_EQ(seq_runner.stats().retries, par_runner.stats().retries);
  EXPECT_DOUBLE_EQ(seq_runner.stats().backoff_ms,
                   par_runner.stats().backoff_ms);
}

TEST(ParallelFlow, ModuleCacheRunMatchesSequentialAndCountsDeterministically) {
  const BlockDesign design = small_design();
  const Device dev = xc7z020_model();
  CfPolicy policy;
  policy.constant_cf = 1.8;

  ModuleCache seq_cache;
  const RwFlowResult seq = seq_cache.run(design, dev, policy, fast_opts(1));
  ModuleCache par_cache;
  const RwFlowResult par = par_cache.run(design, dev, policy, fast_opts(8));

  expect_same_flow(seq, par);
  EXPECT_EQ(seq_cache.hits(), par_cache.hits());
  EXPECT_EQ(seq_cache.misses(), par_cache.misses());
  ASSERT_EQ(seq_cache.size(), par_cache.size());
  auto pit = par_cache.entries().begin();
  for (const auto& [name, block] : seq_cache.entries()) {
    EXPECT_EQ(name, pit->first);
    EXPECT_DOUBLE_EQ(block.macro.cf, pit->second.macro.cf);
    EXPECT_EQ(block.macro.used_slices, pit->second.macro.used_slices);
    ++pit;
  }
  // A warm parallel re-run is all hits: no tool runs at all.
  const RwFlowResult warm = par_cache.run(design, dev, policy, fast_opts(8));
  EXPECT_EQ(warm.total_tool_runs, 0);
  EXPECT_EQ(par_cache.misses(), 3);
  EXPECT_EQ(par_cache.hits(), 3);
}

TEST(ParallelFlow, DatasetSweepSliceBitIdenticalJobs1VsJobs8) {
  // Ground-truth labelling (realize + min-CF search per spec) is the other
  // acceptance A/B: sample order, every label, and the infeasible count must
  // match the sequential sweep.
  const Device dev = xc7z020_model();
  const std::vector<GenSpec> specs = dataset_sweep({120, 42});
  const GroundTruth seq = build_ground_truth(specs, dev, {}, /*jobs=*/1);
  const GroundTruth par = build_ground_truth(specs, dev, {}, /*jobs=*/8);
  EXPECT_EQ(seq.infeasible, par.infeasible);
  ASSERT_EQ(seq.samples.size(), par.samples.size());
  for (std::size_t i = 0; i < seq.samples.size(); ++i) {
    EXPECT_EQ(seq.samples[i].name, par.samples[i].name);
    EXPECT_DOUBLE_EQ(seq.samples[i].min_cf, par.samples[i].min_cf);
    EXPECT_EQ(seq.samples[i].report.est_slices, par.samples[i].report.est_slices);
    EXPECT_EQ(seq.samples[i].shape.bbox_w, par.samples[i].shape.bbox_w);
    EXPECT_EQ(seq.samples[i].shape.bbox_h, par.samples[i].shape.bbox_h);
  }
}

TEST(ParallelFlow, RealizeAllMatchesSequentialRealize) {
  const std::vector<GenSpec> specs = dataset_sweep({60, 42});
  const std::vector<Module> seq = realize_all(specs, /*jobs=*/1);
  const std::vector<Module> par = realize_all(specs, /*jobs=*/8);
  ASSERT_EQ(seq.size(), specs.size());
  ASSERT_EQ(par.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(seq[i].name, par[i].name);
    ASSERT_EQ(seq[i].netlist.num_cells(), par[i].netlist.num_cells());
    EXPECT_EQ(seq[i].netlist.num_nets(), par[i].netlist.num_nets());
    // Realization is seeded per spec, so the one-at-a-time API agrees too.
    const Module one = realize(specs[i]);
    EXPECT_EQ(one.name, par[i].name);
    EXPECT_EQ(one.netlist.num_cells(), par[i].netlist.num_cells());
  }
}

TEST(ParallelForest, FitBitIdenticalJobs1VsJobs4) {
  Rng rng(3);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    const double a = rng.uniform(-2.0, 2.0);
    const double b = rng.uniform(-2.0, 2.0);
    x.push_back({a, b});
    y.push_back((a > 0.3 ? 2.0 : -1.0) + 0.5 * b);
  }
  RForestOptions opts;
  opts.trees = 40;
  RandomForest seq;
  opts.jobs = 1;
  seq.fit(x, y, opts);
  RandomForest par;
  opts.jobs = 4;
  par.fit(x, y, opts);

  ASSERT_EQ(seq.tree_count(), par.tree_count());
  for (const std::vector<double>& row : x) {
    EXPECT_DOUBLE_EQ(seq.predict(row), par.predict(row));
  }
  const std::vector<double>& si = seq.feature_importance();
  const std::vector<double>& pi = par.feature_importance();
  ASSERT_EQ(si.size(), pi.size());
  for (std::size_t i = 0; i < si.size(); ++i) {
    EXPECT_DOUBLE_EQ(si[i], pi[i]);
  }
}

}  // namespace
}  // namespace mf
