// Custom gtest main: the farm suites spawn worker *processes* and the
// supervised-serve suites spawn daemon *children* by re-executing the
// running binary with --farm-worker / --serve-child (see
// src/farm/worker.hpp and src/srv/supervised.hpp), so the test runner
// itself must answer those argv shapes before Google Test ever sees them.
// Ordinary test invocations fall through unchanged.

#include <gtest/gtest.h>

#include <optional>

#include "farm/worker.hpp"
#include "srv/supervised.hpp"

int main(int argc, char** argv) {
  if (const std::optional<int> code = mf::maybe_run_farm_worker(argc, argv)) {
    return *code;
  }
  if (const std::optional<int> code =
          mf::maybe_run_serve_child(argc, argv)) {
    return *code;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
