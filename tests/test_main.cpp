// Custom gtest main: the farm suites spawn worker *processes* by
// re-executing the running binary with --farm-worker (see
// src/farm/worker.hpp), so the test runner itself must answer that argv
// before Google Test ever sees it. Ordinary test invocations fall through
// unchanged.

#include <gtest/gtest.h>

#include <optional>

#include "farm/worker.hpp"

int main(int argc, char** argv) {
  if (const std::optional<int> code = mf::maybe_run_farm_worker(argc, argv)) {
    return *code;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
