// Container-level suite for common/binfile: round trips, cursor semantics,
// writer misuse, and the every-byte damage sweeps. The damage invariant is
// stronger than the text formats': every byte of a binary container is
// covered by a checksum tier (header -> magic/version compare, payload ->
// whole-payload checksum, table -> table checksum, footer -> field
// cross-checks), so EVERY single-byte flip and EVERY truncation must be
// rejected -- there is no "happens to still parse" carve-out here.
//
// Golden fixtures: tests/data/ holds container files produced by this
// build's writers (plain container, ground-truth v4-bin, module-cache
// v2-bin). The fixture tests assert (a) today's reader still accepts the
// checked-in bytes and (b) today's writer still produces exactly those
// bytes -- any format drift shows up as a fixture diff in review instead
// of a silent compatibility break. Regenerate with MF_REGEN_FIXTURES=1.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/binfile.hpp"
#include "common/check.hpp"
#include "flow/rw_flow.hpp"
#include "flow/serialize.hpp"

namespace mf {
namespace {

namespace fs = std::filesystem;

/// A small container exercising every typed write plus a raw blob.
std::string sample_container() {
  BinWriter writer;
  writer.begin_section("meta");
  writer.str("macroflow-test");
  writer.u32(7);
  writer.begin_section("values");
  writer.u8(0xAB);
  writer.u32(0xDEADBEEF);
  writer.u64(0x0123456789ABCDEFull);
  writer.i32(-42);
  writer.i64(-1234567890123ll);
  writer.f64(0.1);
  writer.f64(1e-17);
  writer.begin_section("blob");
  writer.raw(std::string("\x00\x01\x02\xFF binary soup \n\r\t", 20));
  return writer.finish();
}

TEST(BinFile, RoundTripsEveryTypedValue) {
  const std::string bytes = sample_container();
  std::string error;
  const auto file = BinFile::open(bytes, &error);
  ASSERT_TRUE(file.has_value()) << error;
  ASSERT_EQ(file->sections().size(), 3u);
  EXPECT_EQ(file->sections()[0].name, "meta");
  EXPECT_EQ(file->sections()[1].name, "values");
  EXPECT_EQ(file->sections()[2].name, "blob");

  const auto meta = file->section("meta");
  ASSERT_TRUE(meta.has_value());
  BinCursor mc(*meta);
  EXPECT_EQ(mc.str(), "macroflow-test");
  EXPECT_EQ(mc.u32(), 7u);
  EXPECT_TRUE(mc.at_end());

  const auto values = file->section("values");
  ASSERT_TRUE(values.has_value());
  BinCursor vc(*values);
  EXPECT_EQ(vc.u8(), 0xAB);
  EXPECT_EQ(vc.u32(), 0xDEADBEEFu);
  EXPECT_EQ(vc.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(vc.i32(), -42);
  EXPECT_EQ(vc.i64(), -1234567890123ll);
  EXPECT_EQ(vc.f64(), 0.1);  // bit-exact: stored as the IEEE pattern
  EXPECT_EQ(vc.f64(), 1e-17);
  EXPECT_TRUE(vc.at_end());

  const auto blob = file->section("blob");
  ASSERT_TRUE(blob.has_value());
  EXPECT_EQ(*blob, std::string_view("\x00\x01\x02\xFF binary soup \n\r\t", 20));
  EXPECT_FALSE(file->section("absent").has_value());
}

TEST(BinFile, EmptyContainerAndEmptySectionRoundTrip) {
  BinWriter empty;
  const std::string no_sections = empty.finish();
  const auto file = BinFile::open(no_sections);
  ASSERT_TRUE(file.has_value());
  EXPECT_TRUE(file->sections().empty());

  BinWriter one;
  one.begin_section("nothing");
  // Keep the image alive: sections are views into the opened bytes.
  const std::string image = one.finish();
  const auto file2 = BinFile::open(image);
  ASSERT_TRUE(file2.has_value());
  const auto bytes = file2->section("nothing");
  ASSERT_TRUE(bytes.has_value());
  EXPECT_TRUE(bytes->empty());
  BinCursor cursor(*bytes);
  EXPECT_TRUE(cursor.at_end());
}

TEST(BinCursor, StickyFailOnOverrun) {
  const std::string two_bytes = "ab";
  BinCursor cursor(two_bytes);
  EXPECT_EQ(cursor.u32(), 0u);  // 4 > 2: latches the fail flag
  EXPECT_FALSE(cursor.ok());
  // Every subsequent read stays zero even though bytes remain.
  EXPECT_EQ(cursor.u8(), 0u);
  EXPECT_EQ(cursor.f64(), 0.0);
  EXPECT_EQ(cursor.str(), "");
  EXPECT_EQ(cursor.raw(1), "");
  EXPECT_FALSE(cursor.at_end());
}

TEST(BinCursor, StrRejectsLengthsAboveMaxLen) {
  BinWriter writer;
  writer.begin_section("s");
  writer.str("0123456789");
  const std::string image = writer.finish();
  const auto file = BinFile::open(image);
  ASSERT_TRUE(file.has_value());
  BinCursor cursor(*file->section("s"));
  EXPECT_EQ(cursor.str(4), "");  // 10 > 4: reject instead of allocating
  EXPECT_FALSE(cursor.ok());
}

TEST(BinCursor, AtEndDetectsTrailingGarbage) {
  BinWriter writer;
  writer.begin_section("s");
  writer.u32(1);
  writer.u32(2);
  const std::string image = writer.finish();
  const auto file = BinFile::open(image);
  ASSERT_TRUE(file.has_value());
  BinCursor cursor(*file->section("s"));
  EXPECT_EQ(cursor.u32(), 1u);
  EXPECT_FALSE(cursor.at_end());  // one u32 of "garbage" still unread
  EXPECT_EQ(cursor.u32(), 2u);
  EXPECT_TRUE(cursor.at_end());
}

TEST(BinWriter, MisuseThrowsCheckError) {
  {
    BinWriter writer;
    EXPECT_THROW(writer.u32(1), CheckError);  // write outside any section
  }
  {
    BinWriter writer;
    writer.begin_section("twice");
    EXPECT_THROW(writer.begin_section("twice"), CheckError);
  }
  {
    BinWriter writer;
    EXPECT_THROW(writer.begin_section(""), CheckError);
  }
  {
    BinWriter writer;
    writer.begin_section("s");
    (void)writer.finish();
    EXPECT_THROW(writer.begin_section("again"), CheckError);
  }
}

TEST(BinFile, RejectsZeroLengthAndForeignBytes) {
  EXPECT_FALSE(BinFile::open("").has_value());
  std::string error;
  EXPECT_FALSE(BinFile::open("not a container", &error).has_value());
  EXPECT_NE(error.find("truncated"), std::string::npos);
  // Long enough to clear the size floor: rejected on the magic itself.
  const std::string foreign(100, 'x');
  EXPECT_FALSE(BinFile::open(foreign, &error).has_value());
  EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST(BinFile, RejectsTruncationAtEveryByte) {
  const std::string bytes = sample_container();
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    const auto file = BinFile::open(bytes.substr(0, n));
    EXPECT_FALSE(file.has_value()) << "parsed a " << n << "-byte prefix of a "
                                   << bytes.size() << "-byte container";
  }
  EXPECT_TRUE(BinFile::open(bytes).has_value());
}

TEST(BinFile, RejectsBitFlipAtEveryByte) {
  // Every byte of the container is under some checksum/compare tier, so a
  // flip anywhere -- including inside the stored checksums themselves --
  // must be rejected. This is the property the text formats cannot offer
  // (their unchecksummed bytes can corrupt silently... into a parse error
  // at best).
  const std::string bytes = sample_container();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string damaged = bytes;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x20);
    const auto file = BinFile::open(damaged);
    EXPECT_FALSE(file.has_value()) << "accepted a flip at byte " << i;
  }
}

TEST(BinFile, RejectsTamperedSectionCountBeforeAllocating) {
  // Adversarial (not random) damage: rewrite the section count to
  // 0xFFFFFFFF and *recompute* the table checksum so only the bounds check
  // stands between the reader and a wild reserve. The count must be
  // validated against the table's physical size, never trusted.
  const std::string bytes = sample_container();
  constexpr std::size_t kFooterSize = 32;
  const auto* data = reinterpret_cast<const unsigned char*>(bytes.data());
  const std::size_t footer = bytes.size() - kFooterSize;
  std::uint64_t table_offset = 0;
  for (int i = 7; i >= 0; --i) {
    table_offset = (table_offset << 8) | data[footer + i];
  }
  std::string damaged = bytes;
  for (int i = 0; i < 4; ++i) {
    damaged[static_cast<std::size_t>(table_offset) + i] = '\xFF';
  }
  const std::string_view table(
      damaged.data() + table_offset, footer - static_cast<std::size_t>(table_offset));
  const std::uint64_t new_checksum = binfile_checksum(table);
  for (int i = 0; i < 8; ++i) {
    damaged[footer + 8 + i] =
        static_cast<char>((new_checksum >> (8 * i)) & 0xFF);
  }
  std::string error;
  EXPECT_FALSE(BinFile::open(damaged, &error).has_value());
  EXPECT_NE(error.find("section count"), std::string::npos) << error;
}

// -- golden fixtures ---------------------------------------------------------

std::string data_dir() { return MF_TEST_DATA_DIR; }

std::optional<std::string> read_fixture(const std::string& name) {
  std::ifstream in(data_dir() + "/" + name, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Compare `bytes` against the checked-in fixture -- or rewrite the fixture
/// when MF_REGEN_FIXTURES is set (used once, at fixture-creation time; the
/// diff then goes through review like any other change).
void expect_matches_fixture(const std::string& name, const std::string& bytes) {
  if (std::getenv("MF_REGEN_FIXTURES") != nullptr) {
    fs::create_directories(data_dir());
    std::ofstream out(data_dir() + "/" + name,
                      std::ios::binary | std::ios::trunc);
    out << bytes;
    ASSERT_TRUE(out.good()) << "failed to regenerate fixture " << name;
    return;
  }
  const auto golden = read_fixture(name);
  ASSERT_TRUE(golden.has_value())
      << "missing fixture " << name
      << " (regenerate with MF_REGEN_FIXTURES=1)";
  EXPECT_EQ(*golden, bytes) << "writer output drifted from fixture " << name;
}

/// Deterministic ground truth for the fixture (no RNG: fixture bytes must
/// be identical on every host).
std::vector<LabeledModule> fixture_ground_truth() {
  std::vector<LabeledModule> samples;
  for (int i = 0; i < 4; ++i) {
    LabeledModule s;
    s.name = "fix_mod_" + std::to_string(i);
    s.min_cf = 1.05 + 0.15 * i;
    s.report.stats.luts = 120 + 17 * i;
    s.report.stats.ffs = 80 + 9 * i;
    s.report.stats.carry4 = i;
    s.report.stats.cells = 200 + 26 * i;
    s.report.stats.control_sets = 5 + i;
    s.report.stats.max_fanout = 30 + 4 * i;
    if (i % 2 == 1) s.report.stats.carry_chains = {4, 2 + i};
    s.report.slices_for_luts = (s.report.stats.luts + 3) / 4;
    s.report.slices_for_ffs = (s.report.stats.ffs + 7) / 8;
    s.report.est_slices = s.report.slices_for_luts;
    s.shape.bbox_w = 5 + i;
    s.shape.bbox_h = 7;
    s.shape.min_height = 2 + i;
    s.shape.carry_columns = i % 2;
    samples.push_back(std::move(s));
  }
  return samples;
}

void fill_fixture_cache(ModuleCache& cache) {
  const char* names[] = {"fix_alpha", "fix_beta"};
  for (int i = 0; i < 2; ++i) {
    ImplementedBlock b;
    b.name = names[i];
    b.status = i == 0 ? FlowStatus::Ok : FlowStatus::Degraded;
    b.seed_cf = 1.3 + 0.1 * i;
    b.first_run_success = i == 0;
    b.attempts = i + 1;
    b.macro.name = names[i];
    b.macro.cf = 1.15 + 0.05 * i;
    b.macro.fill_ratio = 0.55 + 0.01 * i;
    b.macro.tool_runs = 2 + i;
    b.macro.used_slices = 31 + i;
    b.macro.est_slices = 30 + i;
    b.macro.pblock = PBlock{i, i + 5, 1, 6};
    b.macro.footprint.height = 6;
    b.macro.footprint.kinds = {ColumnKind::ClbL, ColumnKind::ClbM};
    cache.restore(std::move(b));
  }
}

TEST(BinFileFixtures, PlainContainerMatchesGolden) {
  const std::string bytes = sample_container();
  expect_matches_fixture("golden_container_v1.bin", bytes);
  ASSERT_TRUE(BinFile::open(bytes).has_value());
}

TEST(BinFileFixtures, GroundTruthBinaryMatchesGoldenAndLoads) {
  const auto samples = fixture_ground_truth();
  const std::string bytes = ground_truth_to_binary(samples);
  expect_matches_fixture("golden_ground_truth_v4.bin", bytes);
  // The checked-in bytes (not just this build's output) must still load
  // and reproduce the samples exactly.
  const auto golden = read_fixture("golden_ground_truth_v4.bin");
  ASSERT_TRUE(golden.has_value());
  const auto loaded = ground_truth_from_binary(*golden);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(ground_truth_to_text(*loaded), ground_truth_to_text(samples));
}

TEST(BinFileFixtures, ModuleCacheBinaryMatchesGoldenAndLoads) {
  ModuleCache cache;
  fill_fixture_cache(cache);
  const std::string bytes = module_cache_to_binary(cache);
  expect_matches_fixture("golden_module_cache_v2.bin", bytes);
  const auto golden = read_fixture("golden_module_cache_v2.bin");
  ASSERT_TRUE(golden.has_value());
  ModuleCache loaded;
  const CacheLoadStats stats = module_cache_from_binary(*golden, loaded);
  EXPECT_TRUE(stats.header_ok);
  EXPECT_TRUE(stats.complete);
  EXPECT_EQ(stats.corrupted, 0);
  EXPECT_EQ(module_cache_to_text(loaded), module_cache_to_text(cache));
}

}  // namespace
}  // namespace mf
