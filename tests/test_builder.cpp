#include "netlist/builder.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "netlist/stats.hpp"

namespace mf {
namespace {

TEST(Builder, ClockIsSingleton) {
  Netlist nl;
  NetlistBuilder b(nl);
  EXPECT_EQ(b.clock(), b.clock());
  EXPECT_TRUE(nl.net(b.clock()).is_clock);
}

TEST(Builder, LutArityBounds) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId in = b.input();
  EXPECT_NO_THROW(b.lut({in}));
  EXPECT_NO_THROW(b.lut({in, in, in, in, in, in}));
  EXPECT_THROW(b.lut({in, in, in, in, in, in, in}), CheckError);
}

TEST(Builder, FfBindsControlSet) {
  Netlist nl;
  NetlistBuilder b(nl);
  const ControlSetId cs = b.control_set(b.input("rst"));
  const NetId q = b.ff(b.input("d"), cs);
  const Cell& ff = nl.cell(nl.net(q).driver);
  EXPECT_EQ(ff.kind, CellKind::Ff);
  EXPECT_EQ(ff.control_set, cs);
}

TEST(Builder, AdderStructure) {
  Netlist nl;
  NetlistBuilder b(nl);
  const std::vector<NetId> a = b.input_bus(10, "a");
  const std::vector<NetId> c = b.input_bus(10, "b");
  const std::vector<NetId> sum = b.adder(a, c);
  EXPECT_EQ(sum.size(), 10u);

  const NetlistStats s = compute_stats(nl);
  EXPECT_EQ(s.luts, 10);              // one propagate LUT per bit
  EXPECT_EQ(s.carry4, 3);             // ceil(10/4) chained segments
  ASSERT_EQ(s.carry_chains.size(), 1u);
  EXPECT_EQ(s.carry_chains[0], 3);
}

TEST(Builder, AdderChainsAreSequential) {
  Netlist nl;
  NetlistBuilder b(nl);
  const std::vector<NetId> a = b.input_bus(8, "a");
  b.adder(a, a);
  std::map<int, std::set<int>> positions;
  for (const Cell& cell : nl.cells()) {
    if (cell.kind == CellKind::Carry4) {
      positions[cell.chain].insert(cell.chain_pos);
    }
  }
  ASSERT_EQ(positions.size(), 1u);
  EXPECT_EQ(*positions.begin()->second.begin(), 0);
  EXPECT_EQ(*positions.begin()->second.rbegin(), 1);
}

TEST(Builder, DistinctAddersGetDistinctChains) {
  Netlist nl;
  NetlistBuilder b(nl);
  const std::vector<NetId> a = b.input_bus(4, "a");
  b.adder(a, a);
  b.adder(a, a);
  const NetlistStats s = compute_stats(nl);
  EXPECT_EQ(s.carry_chains.size(), 2u);
}

TEST(Builder, ReduceConvergesToOneNet) {
  Netlist nl;
  NetlistBuilder b(nl);
  const std::vector<NetId> inputs = b.input_bus(100, "x");
  b.reduce(inputs, 4);
  const NetlistStats s = compute_stats(nl);
  // Arity-4 tree over 100 leaves: 25 + 6 + 2 + 1 = 34 LUTs (a lone
  // leftover net passes through a level without a LUT).
  EXPECT_EQ(s.luts, 34);
}

TEST(Builder, ReduceSingleInputIsFree) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId x = b.input();
  EXPECT_EQ(b.reduce(std::vector<NetId>{x}), x);
  EXPECT_EQ(compute_stats(nl).luts, 0);
}

TEST(Builder, FfChainDepthAndLinkage) {
  Netlist nl;
  NetlistBuilder b(nl);
  const ControlSetId cs = b.control_set();
  const std::vector<NetId> taps = b.ff_chain(b.input("d"), 5, cs);
  EXPECT_EQ(taps.size(), 5u);
  EXPECT_EQ(compute_stats(nl).ffs, 5);
  // Each tap drives exactly the next FF.
  for (std::size_t i = 0; i + 1 < taps.size(); ++i) {
    EXPECT_EQ(nl.net(taps[i]).sinks.size(), 1u);
  }
}

TEST(Builder, LutLayerProducesDistinctLuts) {
  Netlist nl;
  NetlistBuilder b(nl);
  const std::vector<NetId> inputs = b.input_bus(16, "x");
  const std::vector<NetId> outs = b.lut_layer(inputs, 40, 4);
  EXPECT_EQ(outs.size(), 40u);
  // No two LUTs may share the exact input sequence (the optimiser would
  // merge them, shrinking the layer).
  std::set<std::vector<NetId>> combos;
  for (const Cell& cell : nl.cells()) {
    if (cell.kind == CellKind::Lut) combos.insert(cell.inputs);
  }
  EXPECT_EQ(combos.size(), 40u);
}

TEST(Builder, SrlAndLutRamAreMTyped) {
  Netlist nl;
  NetlistBuilder b(nl);
  const ControlSetId cs = b.control_set();
  b.srl(b.input(), cs);
  const std::vector<NetId> addr = b.input_bus(5, "a");
  b.lutram(addr, b.input(), cs);
  const NetlistStats s = compute_stats(nl);
  EXPECT_EQ(s.srls, 1);
  EXPECT_EQ(s.lutrams, 1);
  EXPECT_EQ(s.m_lut_cells(), 2);
}

TEST(Builder, HardBlocks) {
  Netlist nl;
  NetlistBuilder b(nl);
  const std::vector<NetId> addr = b.input_bus(10, "a");
  b.bram18(addr, addr);
  b.bram36(addr, addr);
  b.dsp48(std::span<const NetId>(addr.data(), 8),
          std::span<const NetId>(addr.data(), 8));
  const NetlistStats s = compute_stats(nl);
  EXPECT_EQ(s.bram18, 1);
  EXPECT_EQ(s.bram36, 1);
  EXPECT_EQ(s.dsp, 1);
  EXPECT_EQ(s.bram36_equiv(), 2);
}

TEST(Builder, RegisterBusWidthPreserved) {
  Netlist nl;
  NetlistBuilder b(nl);
  const ControlSetId cs = b.control_set();
  const std::vector<NetId> bus = b.input_bus(7, "d");
  EXPECT_EQ(b.register_bus(bus, cs).size(), 7u);
  EXPECT_EQ(compute_stats(nl).ffs, 7);
}

}  // namespace
}  // namespace mf
