#include "stitch/sa_stitcher.hpp"

#include <gtest/gtest.h>

#include "fabric/catalog.hpp"

namespace mf {
namespace {

/// Build a macro whose footprint starts at column `col0` with `w` columns
/// and `h` rows on `dev`.
Macro make_macro(const Device& dev, const std::string& name, int col0, int w,
                 int h, bool uses_hard = false) {
  Macro macro;
  macro.name = name;
  macro.pblock = PBlock{col0, col0 + w - 1, 0, h - 1};
  macro.footprint = footprint_of(dev, macro.pblock, uses_hard);
  macro.used_slices = w * h;
  macro.est_slices = w * h;
  macro.cf = 1.0;
  return macro;
}

StitchProblem chain_problem(const Device& dev, int blocks, int w, int h) {
  StitchProblem problem;
  problem.macros.push_back(make_macro(dev, "m", 0, w, h));
  for (int i = 0; i < blocks; ++i) {
    problem.instances.push_back(
        BlockInstance{"m_i" + std::to_string(i), 0});
  }
  // Chain connectivity: i <-> i+1.
  for (int i = 0; i + 1 < blocks; ++i) {
    problem.nets.push_back(BlockNet{{i, i + 1}, 1.0});
  }
  return problem;
}

StitchOptions fast_opts(std::uint64_t seed = 1) {
  StitchOptions opts;
  opts.seed = seed;
  opts.moves_per_temp = 200;
  opts.cooling = 0.85;
  return opts;
}

TEST(Stitcher, PlacesEverythingWithRoom) {
  const Device dev = xc7z020_model();
  const StitchProblem problem = chain_problem(dev, 20, 3, 10);
  const StitchResult r = stitch(dev, problem, fast_opts());
  EXPECT_EQ(r.unplaced, 0);
  EXPECT_GT(r.total_moves, 0);
}

TEST(Stitcher, NoOverlapsInResult) {
  const Device dev = xc7z020_model();
  const StitchProblem problem = chain_problem(dev, 30, 4, 12);
  const StitchResult r = stitch(dev, problem, fast_opts(2));
  std::vector<int> grid(
      static_cast<std::size_t>(dev.num_columns()) *
          static_cast<std::size_t>(dev.rows()),
      -1);
  for (std::size_t i = 0; i < r.positions.size(); ++i) {
    const BlockPlacement& p = r.positions[i];
    if (!p.placed()) continue;
    const Macro& macro = problem.macros[0];
    for (int c = p.col; c < p.col + macro.footprint.width(); ++c) {
      for (int row = p.row; row < p.row + macro.footprint.height; ++row) {
        auto& cell = grid[static_cast<std::size_t>(c) *
                              static_cast<std::size_t>(dev.rows()) +
                          static_cast<std::size_t>(row)];
        ASSERT_EQ(cell, -1) << "overlap between " << cell << " and " << i;
        cell = static_cast<int>(i);
      }
    }
  }
}

TEST(Stitcher, PlacedBlocksOnCompatibleAnchors) {
  const Device dev = xc7z020_model();
  const StitchProblem problem = chain_problem(dev, 15, 5, 9);
  const StitchResult r = stitch(dev, problem, fast_opts(3));
  for (const BlockPlacement& p : r.positions) {
    if (!p.placed()) continue;
    EXPECT_TRUE(footprint_fits(dev, problem.macros[0].footprint, p.col, p.row,
                               problem.macros[0].pblock.row_lo));
  }
}

TEST(Stitcher, ParksBlocksWhenDeviceFull) {
  const Device dev = xc7z020_model();
  // 60 blocks of 30x30 cannot fit a ~94x150 grid.
  const StitchProblem problem = chain_problem(dev, 60, 30, 30);
  const StitchResult r = stitch(dev, problem, fast_opts(4));
  EXPECT_GT(r.unplaced, 0);
  EXPECT_LT(r.unplaced, 60);  // some must fit
}

TEST(Stitcher, ConnectedBlocksEndUpCloserThanRandom) {
  const Device dev = xc7z020_model();
  const StitchProblem problem = chain_problem(dev, 24, 3, 10);
  StitchOptions opts = fast_opts(5);
  const StitchResult annealed = stitch(dev, problem, opts);
  // Quenched run (temperature ~0, no optimisation passes beyond greedy):
  StitchOptions frozen = opts;
  frozen.moves_per_temp = 1;
  frozen.min_temp_ratio = 0.99;  // single temperature step
  const StitchResult greedy = stitch(dev, problem, frozen);
  EXPECT_LE(annealed.wirelength, greedy.wirelength);
}

TEST(Stitcher, CostTraceDecreasesOverall) {
  const Device dev = xc7z020_model();
  const StitchProblem problem = chain_problem(dev, 24, 3, 10);
  const StitchResult r = stitch(dev, problem, fast_opts(6));
  ASSERT_GE(r.cost_trace.size(), 2u);
  // The final (best-restored, fill-completed) cost never exceeds the
  // greedy starting point; the raw trace may wander above it at high
  // temperature.
  EXPECT_LE(r.cost, r.cost_trace.front().second);
  EXPECT_LE(r.converge_move, r.total_moves);
}

TEST(Stitcher, DeterministicPerSeed) {
  const Device dev = xc7z020_model();
  const StitchProblem problem = chain_problem(dev, 12, 3, 8);
  const StitchResult a = stitch(dev, problem, fast_opts(7));
  const StitchResult b = stitch(dev, problem, fast_opts(7));
  EXPECT_EQ(a.wirelength, b.wirelength);
  EXPECT_EQ(a.unplaced, b.unplaced);
  EXPECT_EQ(a.accepted, b.accepted);
}

TEST(Stitcher, CoverageMatchesPlacedArea) {
  const Device dev = xc7z020_model();
  const StitchProblem problem = chain_problem(dev, 10, 3, 10);
  const StitchResult r = stitch(dev, problem, fast_opts(8));
  ASSERT_EQ(r.unplaced, 0);
  // Each footprint covers at most 3 CLB columns x 10 rows.
  const double max_cover =
      10.0 * 3 * 10 / dev.totals().slices;
  EXPECT_LE(r.coverage, max_cover + 1e-9);
  EXPECT_GT(r.coverage, 0.0);
}

TEST(Stitcher, HardBlockMacrosKeepAlignment) {
  const Device dev = xc7z020_model();
  int bram_col = -1;
  for (int c = 0; c < dev.num_columns(); ++c) {
    if (dev.column(c) == ColumnKind::Bram) {
      bram_col = c;
      break;
    }
  }
  ASSERT_GT(bram_col, 0);
  StitchProblem problem;
  problem.macros.push_back(
      make_macro(dev, "bram_user", bram_col - 1, 3, 10, /*uses_hard=*/true));
  for (int i = 0; i < 4; ++i) {
    problem.instances.push_back(BlockInstance{"b" + std::to_string(i), 0});
  }
  const StitchResult r = stitch(dev, problem, fast_opts(9));
  for (const BlockPlacement& p : r.positions) {
    if (!p.placed()) continue;
    EXPECT_EQ((p.row - problem.macros[0].pblock.row_lo) % kBramRowPitch, 0);
  }
}

}  // namespace
}  // namespace mf
