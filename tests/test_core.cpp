// Tests for the paper's core: PBlock generation (Fig. 1), the minimal-CF
// search, the seeded search schedule (Section VIII), and feature extraction.

#include <gtest/gtest.h>

#include <cmath>

#include "core/cf_search.hpp"
#include "core/features.hpp"
#include "fabric/catalog.hpp"
#include "netlist/builder.hpp"
#include "rtlgen/generators.hpp"
#include "synth/optimize.hpp"

namespace mf {
namespace {

struct Prepared {
  Module module;
  ResourceReport report;
  ShapeReport shape;
};

Prepared prepare(Module module) {
  optimize(module.netlist);
  Prepared p{std::move(module), {}, {}};
  p.report = make_report(p.module.netlist);
  p.shape = quick_place(p.report);
  return p;
}

Prepared sample_module(std::uint64_t seed = 1, int luts = 400, int ffs = 350) {
  Rng rng(seed);
  MixedParams params;
  params.luts = luts;
  params.ffs = ffs;
  params.carry_adders = 2;
  params.carry_width = 12;
  params.control_sets = 3;
  return prepare(gen_mixed(params, rng));
}

TEST(PBlockGenerator, CoversScaledNeeds) {
  const Device dev = xc7z020_model();
  const Prepared p = sample_module();
  for (double cf : {1.0, 1.3, 1.7}) {
    const auto pb = generate_pblock(dev, p.report, p.shape, cf);
    ASSERT_TRUE(pb.has_value());
    const FabricResources r = dev.resources_in(*pb);
    EXPECT_GE(r.slices, static_cast<int>(p.report.est_slices * cf));
    EXPECT_GE(r.slices_m, p.report.est_slices_m);
  }
}

TEST(PBlockGenerator, SlicesMonotoneInCf) {
  const Device dev = xc7z020_model();
  const Prepared p = sample_module();
  int prev = 0;
  for (double cf = 0.9; cf <= 2.0; cf += 0.1) {
    const auto pb = generate_pblock(dev, p.report, p.shape, cf);
    ASSERT_TRUE(pb.has_value());
    const int slices = dev.resources_in(*pb).slices;
    EXPECT_GE(slices, prev);
    prev = slices;
  }
}

TEST(PBlockGenerator, RespectsCarryMinHeight) {
  const Device dev = xc7z020_model();
  Rng rng(2);
  const Prepared p = prepare(gen_carry({1, 48, false}, rng));
  const auto pb = generate_pblock(dev, p.report, p.shape, 1.0);
  ASSERT_TRUE(pb.has_value());
  EXPECT_GE(pb->height(), p.report.stats.longest_chain());
}

TEST(PBlockGenerator, HardBlocksForceTallRectangles) {
  const Device dev = xc7z020_model();
  Netlist nl;
  NetlistBuilder b(nl);
  const std::vector<NetId> addr = b.input_bus(10, "a");
  for (int i = 0; i < 10; ++i) b.bram36(addr, addr);
  nl.mark_output(b.lut({addr[0]}));
  Module m;
  m.netlist = std::move(nl);
  const Prepared p = prepare(std::move(m));
  const auto pb = generate_pblock(dev, p.report, p.shape, 1.0);
  ASSERT_TRUE(pb.has_value());
  EXPECT_GE(dev.resources_in(*pb).bram36, 10);
  EXPECT_GE(pb->height(), 10 * kBramRowPitch);
}

TEST(PBlockGenerator, HardBlockDominatedIgnoresSmallCf) {
  // For a BRAM-driven module, CF changes below ~1 do not change the PBlock:
  // the paper's explanation for the sub-0.7 Figure 4 bins.
  const Device dev = xc7z020_model();
  Netlist nl;
  NetlistBuilder b(nl);
  const std::vector<NetId> addr = b.input_bus(10, "a");
  for (int i = 0; i < 6; ++i) b.bram36(addr, addr);
  nl.mark_output(b.lut({addr[0]}));
  Module m;
  m.netlist = std::move(nl);
  const Prepared p = prepare(std::move(m));
  const auto small = generate_pblock(dev, p.report, p.shape, 0.5);
  const auto one = generate_pblock(dev, p.report, p.shape, 0.9);
  ASSERT_TRUE(small && one);
  EXPECT_EQ(*small, *one);
}

TEST(PBlockGenerator, ImpossibleNeedsReturnNullopt) {
  const Device dev = xc7z020_model();
  const Prepared p = sample_module();
  ResourceReport huge = p.report;
  huge.est_slices = dev.totals().slices + 1;
  EXPECT_FALSE(generate_pblock(dev, huge, p.shape, 1.0).has_value());
}

TEST(PBlockDims, AreaTracksTarget) {
  const Device dev = xc7z020_model();
  const Prepared p = sample_module();
  const PBlockDims d1 = pblock_dims(p.report, p.shape, 1.0, dev);
  const PBlockDims d2 = pblock_dims(p.report, p.shape, 2.0, dev);
  EXPECT_GE(static_cast<long>(d1.width) * d1.height, p.report.est_slices);
  EXPECT_GT(static_cast<long>(d2.width) * d2.height,
            static_cast<long>(d1.width) * d1.height);
}

TEST(CfSearch, FindsMinimalFeasible) {
  const Device dev = xc7z020_model();
  const Prepared p = sample_module();
  const CfSearchResult found = find_min_cf(p.module, p.report, p.shape, dev);
  ASSERT_TRUE(found.found);
  EXPECT_GE(found.min_cf, 0.9);
  EXPECT_LE(found.min_cf, 2.5);
  EXPECT_TRUE(found.place.feasible);
}

TEST(CfSearch, ReportedCfIsTight) {
  // One step below the reported minimum must be infeasible (unless the
  // PBlock is identical due to quantization).
  const Device dev = xc7z020_model();
  const Prepared p = sample_module(3, 700, 500);
  CfSearchOptions opts;
  const CfSearchResult found =
      find_min_cf(p.module, p.report, p.shape, dev, opts);
  ASSERT_TRUE(found.found);
  if (found.min_cf > opts.start + 1e-9) {
    const double below = found.min_cf - opts.step;
    const auto pb = generate_pblock(dev, p.report, p.shape, below);
    ASSERT_TRUE(pb.has_value());
    if (!(*pb == found.pblock)) {
      const PlaceResult r =
          place_in_pblock(p.module, p.report, dev, *pb, opts.place);
      EXPECT_FALSE(r.feasible);
    }
  }
}

TEST(CfSearch, ToolRunsCounted) {
  const Device dev = xc7z020_model();
  const Prepared p = sample_module();
  const CfSearchResult found = find_min_cf(p.module, p.report, p.shape, dev);
  ASSERT_TRUE(found.found);
  EXPECT_GE(found.tool_runs, 1);
  // Never more runs than CF steps in the searched interval.
  EXPECT_LE(found.tool_runs,
            static_cast<int>((found.min_cf - 0.9) / 0.02) + 2);
}

TEST(SeededSearch, FirstRunSuccessWhenSeedGenerous) {
  const Device dev = xc7z020_model();
  const Prepared p = sample_module();
  const SeededSearchResult r =
      seeded_cf_search(p.module, p.report, p.shape, dev, 2.2);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(r.first_run_success);
  EXPECT_EQ(r.tool_runs, 1);
  EXPECT_DOUBLE_EQ(r.cf, 2.2);
}

TEST(SeededSearch, ClimbsFromUnderestimate) {
  const Device dev = xc7z020_model();
  const Prepared p = sample_module(5, 800, 700);
  const CfSearchResult truth = find_min_cf(p.module, p.report, p.shape, dev);
  ASSERT_TRUE(truth.found);
  const SeededSearchResult r =
      seeded_cf_search(p.module, p.report, p.shape, dev, 0.9);
  ASSERT_TRUE(r.found);
  if (truth.min_cf > 0.9 + 1e-9) {
    EXPECT_FALSE(r.first_run_success);
    EXPECT_GT(r.tool_runs, 1);
  }
  // The seeded schedule never lands below the true minimum.
  EXPECT_GE(r.cf, truth.min_cf - 0.021);
}

TEST(SeededSearch, MoreRunsFromWorseSeed) {
  const Device dev = xc7z020_model();
  const Prepared p = sample_module(5, 800, 700);
  const SeededSearchResult far =
      seeded_cf_search(p.module, p.report, p.shape, dev, 0.9);
  const CfSearchResult truth = find_min_cf(p.module, p.report, p.shape, dev);
  ASSERT_TRUE(truth.found && far.found);
  const SeededSearchResult close = seeded_cf_search(
      p.module, p.report, p.shape, dev, truth.min_cf + 0.01);
  EXPECT_LE(close.tool_runs, far.tool_runs);
}

// -- features -----------------------------------------------------------------

class FeatureSetTest : public ::testing::TestWithParam<FeatureSet> {};

TEST_P(FeatureSetTest, NamesAlignWithValues) {
  const Prepared p = sample_module();
  const auto names = feature_names(GetParam());
  const auto values = extract_features(GetParam(), p.report, p.shape);
  EXPECT_EQ(names.size(), values.size());
  EXPECT_FALSE(names.empty());
  for (double v : values) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

INSTANTIATE_TEST_SUITE_P(AllSets, FeatureSetTest,
                         ::testing::Values(FeatureSet::Classical,
                                           FeatureSet::ClassicalStar,
                                           FeatureSet::Additional,
                                           FeatureSet::All,
                                           FeatureSet::LinReg9));

TEST(Features, LinReg9HasNineInputs) {
  EXPECT_EQ(feature_names(FeatureSet::LinReg9).size(), 9u);
}

TEST(Features, AdditionalAreRelative) {
  // Scaling a design up should leave the relative features nearly unchanged.
  const Prepared small = sample_module(7, 200, 160);
  const Prepared big = sample_module(7, 2000, 1600);
  const auto fs = extract_features(FeatureSet::Additional, small.report,
                                   small.shape);
  const auto fb =
      extract_features(FeatureSet::Additional, big.report, big.shape);
  // Carry ratio (index 0) shrinks with size here (fixed adder count), but
  // FF/All (index 2) must stay comparable.
  EXPECT_NEAR(fs[2], fb[2], 0.25);
}

TEST(Features, CarryRatioReflectsCarryContent) {
  Rng rng(8);
  const Prepared carry = prepare(gen_carry({2, 16, false}, rng));
  const Prepared plain = sample_module(9, 400, 100);
  const auto fc =
      extract_features(FeatureSet::Additional, carry.report, carry.shape);
  const auto fp =
      extract_features(FeatureSet::Additional, plain.report, plain.shape);
  EXPECT_GT(fc[0], fp[0]);  // Carry/All
}

}  // namespace
}  // namespace mf
