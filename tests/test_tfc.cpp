#include <gtest/gtest.h>

#include "fabric/catalog.hpp"
#include "flow/rw_flow.hpp"
#include "nn/cnv_w1a1.hpp"
#include "synth/optimize.hpp"
#include "synth/report.hpp"

namespace mf {
namespace {

TEST(Tfc, InventoryIsSmallMlp) {
  const BlockDesign tfc = build_tfc_w1a1();
  // 4 layers x (mvaus + weights + threshold) = 12 unique blocks,
  // 4+2+2+1 MVAUs + 4 weights + 4 thresholds = 17 instances.
  EXPECT_EQ(tfc.unique_modules.size(), 12u);
  EXPECT_EQ(tfc.instances.size(), 17u);
  EXPECT_GE(tfc.unique_index("tfc_mvau_0"), 0);
  EXPECT_GE(tfc.unique_index("tfc_weights_3"), 0);
}

TEST(Tfc, FitsComfortablyOnTheDevice) {
  const Device dev = xc7z020_model();
  const BlockDesign tfc = build_tfc_w1a1();
  long total = 0;
  for (const Module& module : tfc.unique_modules) {
    Module m = module;
    optimize(m.netlist);
    total += make_report(m.netlist).est_slices;
  }
  // Far below capacity: TFC's value is recompile speed, not packing.
  EXPECT_LT(total, dev.totals().slices / 4);
}

TEST(Tfc, FullFlowPlacesEverything) {
  const Device dev = xc7z020_model();
  const BlockDesign tfc = build_tfc_w1a1();
  RwFlowOptions opts;
  opts.compute_timing = false;
  opts.stitch.moves_per_temp = 100;
  opts.stitch.cooling = 0.8;
  CfPolicy policy;
  policy.constant_cf = 1.5;
  const RwFlowResult r = run_rw_flow(tfc, dev, policy, opts);
  EXPECT_EQ(r.failed_blocks, 0);
  EXPECT_EQ(r.stitch.unplaced, 0);
  EXPECT_EQ(r.problem.instances.size(), tfc.instances.size());
}

TEST(Tfc, DeterministicBuild) {
  const BlockDesign a = build_tfc_w1a1();
  const BlockDesign b = build_tfc_w1a1();
  ASSERT_EQ(a.unique_modules.size(), b.unique_modules.size());
  for (std::size_t i = 0; i < a.unique_modules.size(); ++i) {
    EXPECT_EQ(a.unique_modules[i].netlist.num_cells(),
              b.unique_modules[i].netlist.num_cells());
  }
}

}  // namespace
}  // namespace mf
