#include "fabric/pblock.hpp"

#include <gtest/gtest.h>

#include "fabric/catalog.hpp"

namespace mf {
namespace {

TEST(Footprint, MatchesAtOrigin) {
  const Device dev = xc7z020_model();
  const PBlock pb{4, 9, 10, 19};
  const Footprint fp = footprint_of(dev, pb, /*uses_bram_or_dsp=*/false);
  EXPECT_EQ(fp.width(), 6);
  EXPECT_EQ(fp.height, 10);
  EXPECT_TRUE(footprint_fits(dev, fp, 4, 10, 10));
}

TEST(Footprint, RejectsMismatchedColumns) {
  const Device dev = xc7z020_model();
  const PBlock pb{4, 9, 10, 19};
  const Footprint fp = footprint_of(dev, pb, false);
  // Shifting by one column scrambles the L/M pattern (period 3, so +1 is a
  // mismatch unless the local pattern happens to repeat).
  bool any_rejected = false;
  for (int shift = 1; shift <= 2; ++shift) {
    if (!footprint_fits(dev, fp, 4 + shift, 10, 10)) any_rejected = true;
  }
  EXPECT_TRUE(any_rejected);
}

TEST(Footprint, PatternPeriodRepeats) {
  const Device dev = xc7z020_model();
  // A pure-CLB footprint repeats on the m_period of 3 columns as long as no
  // special column interferes.
  const PBlock pb{0, 2, 0, 9};
  const Footprint fp = footprint_of(dev, pb, false);
  const auto anchors = compatible_anchors(dev, fp, 0);
  EXPECT_GT(anchors.size(), 100u);
  for (const auto& [col, row] : anchors) {
    ASSERT_TRUE(footprint_fits(dev, fp, col, row, 0));
  }
}

TEST(Footprint, VerticalFreedomWithoutHardBlocks) {
  const Device dev = xc7z020_model();
  const PBlock pb{0, 2, 0, 9};
  const Footprint fp = footprint_of(dev, pb, false);
  // Every row 0..rows-height must be available at the original column.
  const auto anchors = compatible_anchors(dev, fp, 0);
  int at_col0 = 0;
  for (const auto& [col, row] : anchors) {
    if (col == 0) ++at_col0;
  }
  EXPECT_EQ(at_col0, dev.rows() - fp.height + 1);
}

TEST(Footprint, BramUsersAlignToPitch) {
  const Device dev = xc7z020_model();
  // Find a BRAM column and build a footprint spanning it.
  int bram_col = -1;
  for (int c = 0; c < dev.num_columns(); ++c) {
    if (dev.column(c) == ColumnKind::Bram) {
      bram_col = c;
      break;
    }
  }
  ASSERT_GE(bram_col, 0);
  const PBlock pb{bram_col - 1, bram_col + 1, 0, 9};
  const Footprint fp = footprint_of(dev, pb, /*uses_bram_or_dsp=*/true);
  const auto anchors = compatible_anchors(dev, fp, 0);
  ASSERT_FALSE(anchors.empty());
  for (const auto& [col, row] : anchors) {
    EXPECT_EQ(row % kBramRowPitch, 0) << "misaligned row " << row;
  }
  EXPECT_FALSE(footprint_fits(dev, fp, bram_col - 1, 3, 0));
  EXPECT_TRUE(footprint_fits(dev, fp, bram_col - 1, kBramRowPitch, 0));
}

TEST(Footprint, OutOfBoundsRejected) {
  const Device dev = xc7z020_model();
  const PBlock pb{0, 2, 0, 9};
  const Footprint fp = footprint_of(dev, pb, false);
  EXPECT_FALSE(footprint_fits(dev, fp, -1, 0, 0));
  EXPECT_FALSE(footprint_fits(dev, fp, dev.num_columns() - 1, 0, 0));
  EXPECT_FALSE(footprint_fits(dev, fp, 0, dev.rows() - 5, 0));
}

TEST(PBlockHelpers, ClbAndMColumnLists) {
  const Device dev = xc7z020_model();
  const PBlock pb{0, 10, 0, 0};
  const std::vector<int> clb = clb_columns_in(dev, pb);
  const std::vector<int> m = m_columns_in(dev, pb);
  EXPECT_FALSE(clb.empty());
  for (int c : clb) EXPECT_TRUE(is_clb(dev.column(c)));
  for (int c : m) EXPECT_EQ(dev.column(c), ColumnKind::ClbM);
  EXPECT_LT(m.size(), clb.size());
}

TEST(PBlockHelpers, ToStringMentionsDims) {
  const std::string s = to_string(PBlock{1, 4, 2, 7});
  EXPECT_NE(s.find("4x6"), std::string::npos);
}

}  // namespace
}  // namespace mf
