// Serving subsystem tests: bundle round-trips (bitwise prediction
// equality for every estimator family), corruption rejection, registry
// versioning/resolution, and EstimatorService determinism + thread safety.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "place/quick_placer.hpp"
#include "rtlgen/generators.hpp"
#include "serve/bundle.hpp"
#include "serve/registry.hpp"
#include "serve/service.hpp"
#include "synth/optimize.hpp"
#include "synth/report.hpp"

namespace mf {
namespace {

namespace fs = std::filesystem;

// -- fixtures ---------------------------------------------------------------
// Serialisation correctness is independent of how the training data was
// labelled, so the suite trains on a synthetic regression set with the
// right feature width instead of paying for a ground-truth build.

Dataset synthetic_dataset(FeatureSet set, std::size_t n, std::uint64_t seed) {
  Dataset data;
  data.feature_names = feature_names(set);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row(data.feature_names.size());
    double target = 0.4;
    for (std::size_t j = 0; j < row.size(); ++j) {
      // Mix raw-count and ratio scales like real features do.
      row[j] = j % 2 == 0 ? rng.uniform(0.0, 4000.0) : rng.uniform(0.0, 1.0);
      target += row[j] * (j % 3 == 0 ? 2.5e-4 : 0.05);
    }
    target += rng.uniform(0.0, 0.2);
    data.add(std::move(row), target, "s" + std::to_string(i));
  }
  return data;
}

std::vector<std::vector<double>> synthetic_rows(FeatureSet set,
                                                std::size_t n,
                                                std::uint64_t seed) {
  return synthetic_dataset(set, n, seed).x;
}

/// Small-but-nontrivial training options so the full suite stays fast.
CfEstimator::Options fast_options() {
  CfEstimator::Options options;
  options.dtree.max_depth = 8;
  options.rforest.trees = 25;
  options.rforest.max_depth = 8;
  options.mlp.hidden = 8;
  options.mlp.epochs = 30;
  options.gboost.rounds = 30;
  return options;
}

ModelBundle make_bundle(EstimatorKind kind, const std::string& name = "m") {
  ModelBundle bundle;
  bundle.name = name;
  bundle.provenance.seed = 3;
  bundle.provenance.dataset_seed = 42;
  bundle.provenance.dataset_rows = 300;
  bundle.provenance.holdout_rows = 60;
  bundle.provenance.holdout_mean_rel_err = 0.081;
  bundle.provenance.holdout_median_rel_err = 0.052;
  bundle.estimator = CfEstimator(kind, FeatureSet::Classical, fast_options());
  bundle.estimator.train(synthetic_dataset(FeatureSet::Classical, 300, 7));
  return bundle;
}

const std::vector<EstimatorKind> kAllKinds = {
    EstimatorKind::LinearRegression, EstimatorKind::NeuralNetwork,
    EstimatorKind::DecisionTree, EstimatorKind::RandomForest,
    EstimatorKind::GradientBoosting,
};

/// Scratch directory wiped per test.
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_((fs::temp_directory_path() /
               ("mf_serve_" + tag + "_" + std::to_string(::getpid())))
                  .string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

// -- estimator round trip ---------------------------------------------------

TEST(ServeBundle, RoundTripIsBitwiseForEveryKind) {
  const auto rows = synthetic_rows(FeatureSet::Classical, 1000, 99);
  for (EstimatorKind kind : kAllKinds) {
    SCOPED_TRACE(to_string(kind));
    const ModelBundle original = make_bundle(kind);
    const std::string text = bundle_to_text(original);
    std::string error;
    const std::optional<ModelBundle> loaded = bundle_from_text(text, &error);
    ASSERT_TRUE(loaded.has_value()) << error;

    EXPECT_EQ(loaded->name, original.name);
    EXPECT_EQ(loaded->estimator.kind(), kind);
    EXPECT_EQ(loaded->estimator.features(), FeatureSet::Classical);
    EXPECT_TRUE(loaded->estimator.trained());
    EXPECT_EQ(loaded->provenance.seed, original.provenance.seed);
    EXPECT_EQ(loaded->provenance.dataset_rows,
              original.provenance.dataset_rows);
    EXPECT_EQ(loaded->provenance.holdout_mean_rel_err,
              original.provenance.holdout_mean_rel_err);

    const std::vector<double> expected = original.estimator.predict_rows(rows);
    const std::vector<double> actual = loaded->estimator.predict_rows(rows);
    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      // Bitwise, not approximate: the serving contract.
      ASSERT_EQ(expected[i], actual[i]) << "row " << i;
    }
    EXPECT_EQ(loaded->estimator.feature_importance(),
              original.estimator.feature_importance());
  }
}

TEST(ServeBundle, SecondSerialisationIsIdentical) {
  const ModelBundle original = make_bundle(EstimatorKind::GradientBoosting);
  const std::string text = bundle_to_text(original);
  const std::optional<ModelBundle> loaded = bundle_from_text(text);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(bundle_to_text(*loaded), text);
}

TEST(ServeBundle, RefusesUntrainedEstimators) {
  ModelBundle bundle;  // default estimator: never trained
  EXPECT_THROW(bundle_to_text(bundle), CheckError);
}

// -- corruption -------------------------------------------------------------

TEST(ServeBundle, RejectsBadMagic) {
  std::string error;
  EXPECT_FALSE(bundle_from_text("", &error).has_value());
  EXPECT_FALSE(bundle_from_text("macroflow-module-cache v1\n", &error));
  EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST(ServeBundle, RejectsWrongFormatVersion) {
  std::string text = bundle_to_text(make_bundle(EstimatorKind::DecisionTree));
  const std::string magic = "macroflow-model-bundle v1";
  ASSERT_EQ(text.rfind(magic, 0), 0u);
  text.replace(magic.size() - 1, 1, "9");
  std::string error;
  EXPECT_FALSE(bundle_from_text(text, &error).has_value());
  EXPECT_NE(error.find("version"), std::string::npos);
}

TEST(ServeBundle, RejectsTruncation) {
  const std::string text =
      bundle_to_text(make_bundle(EstimatorKind::DecisionTree));
  std::string error;
  // Cut anywhere: missing footer, or footer line-count mismatch.
  EXPECT_FALSE(bundle_from_text(text.substr(0, text.size() / 2), &error));
  const std::size_t footer = text.rfind("# payload ");
  ASSERT_NE(footer, std::string::npos);
  EXPECT_FALSE(bundle_from_text(text.substr(0, footer), &error).has_value());
  EXPECT_NE(error.find("truncated"), std::string::npos);
  // A payload line dropped while the footer survives: count mismatch.
  const std::size_t line = text.find('\n', text.find('\n') + 1);
  std::string dropped = text.substr(0, line + 1);
  dropped += text.substr(text.find('\n', line + 1) + 1);
  EXPECT_FALSE(bundle_from_text(dropped).has_value());
  // Data after the footer is equally corrupt.
  EXPECT_FALSE(bundle_from_text(text + "stray\n").has_value());
}

TEST(ServeBundle, RejectsFlippedChecksumByte) {
  const std::string text =
      bundle_to_text(make_bundle(EstimatorKind::RandomForest));
  // Flip one payload byte (inside some x<hex> token past the header lines).
  const std::size_t pos = text.find("x");
  ASSERT_NE(pos, std::string::npos);
  std::string flipped = text;
  flipped[pos + 3] = flipped[pos + 3] == '0' ? '1' : '0';
  std::string error;
  EXPECT_FALSE(bundle_from_text(flipped, &error).has_value());
  EXPECT_NE(error.find("checksum"), std::string::npos);

  // Flip a byte of the recorded checksum itself.
  const std::size_t footer = text.rfind("checksum ");
  std::string bad_footer = text;
  char& digit = bad_footer[footer + std::strlen("checksum ")];
  digit = digit == '0' ? '1' : '0';
  EXPECT_FALSE(bundle_from_text(bad_footer, &error).has_value());
}

TEST(ServeBundle, CrlfRoundTrips) {
  const ModelBundle original = make_bundle(EstimatorKind::NeuralNetwork);
  const std::string text = bundle_to_text(original);
  std::string crlf;
  crlf.reserve(text.size() + 256);
  for (char c : text) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  std::string error;
  const std::optional<ModelBundle> loaded = bundle_from_text(crlf, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  const auto rows = synthetic_rows(FeatureSet::Classical, 100, 5);
  EXPECT_EQ(loaded->estimator.predict_rows(rows),
            original.estimator.predict_rows(rows));
}

// -- registry ---------------------------------------------------------------

TEST(ServeRegistry, VersionsCountUpAndNewestWins) {
  TempDir dir("registry_versions");
  ModelRegistry registry(dir.path());
  EXPECT_TRUE(registry.list().empty());

  const auto e1 = registry.put(make_bundle(EstimatorKind::DecisionTree));
  ASSERT_TRUE(e1.has_value());
  EXPECT_EQ(e1->version, 1);
  const auto e2 = registry.put(make_bundle(EstimatorKind::RandomForest));
  ASSERT_TRUE(e2.has_value());
  EXPECT_EQ(e2->version, 2);

  const auto entries = registry.list();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries.front().version, 2);  // newest first

  const auto resolved = registry.resolve("m");
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(resolved->version, 2);
  EXPECT_EQ(resolved->estimator.kind(), EstimatorKind::RandomForest);

  const auto exact = registry.load("m", 1);
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(exact->estimator.kind(), EstimatorKind::DecisionTree);
}

TEST(ServeRegistry, CorruptNewestFallsBackToOlderGoodBundle) {
  TempDir dir("registry_corrupt");
  ModelRegistry registry(dir.path());
  ASSERT_TRUE(registry.put(make_bundle(EstimatorKind::DecisionTree)));
  const auto e2 = registry.put(make_bundle(EstimatorKind::RandomForest));
  ASSERT_TRUE(e2.has_value());

  // Chop the newest file in half on disk.
  std::ifstream in(e2->path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  in.close();
  const std::string text = buffer.str();
  std::ofstream out(e2->path, std::ios::trunc);
  out << text.substr(0, text.size() / 3);
  out.close();

  ResolveStats stats;
  const auto resolved =
      registry.resolve("m", std::nullopt, std::nullopt, &stats);
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(resolved->version, 1);
  EXPECT_EQ(resolved->estimator.kind(), EstimatorKind::DecisionTree);
  EXPECT_EQ(stats.corrupt, 1);
  EXPECT_NE(stats.last_error.find(e2->path), std::string::npos);
}

TEST(ServeRegistry, CompatibilityConstraintsFilter) {
  TempDir dir("registry_compat");
  ModelRegistry registry(dir.path());
  ASSERT_TRUE(registry.put(make_bundle(EstimatorKind::DecisionTree)));

  ResolveStats stats;
  EXPECT_FALSE(registry
                   .resolve("m", std::nullopt, EstimatorKind::RandomForest,
                            &stats)
                   .has_value());
  EXPECT_EQ(stats.incompatible, 1);
  EXPECT_FALSE(
      registry.resolve("m", FeatureSet::All, std::nullopt, &stats));
  EXPECT_TRUE(registry
                  .resolve("m", FeatureSet::Classical,
                           EstimatorKind::DecisionTree, &stats)
                  .has_value());
  EXPECT_FALSE(registry.resolve("absent", std::nullopt, std::nullopt, &stats));
  EXPECT_EQ(stats.considered, 0);
}

// -- service ----------------------------------------------------------------

TEST(EstimatorService, BatchedPredictionIsBitIdenticalAtAnyJobs) {
  TempDir dir("service_jobs");
  {
    ModelRegistry registry(dir.path());
    ASSERT_TRUE(registry.put(make_bundle(EstimatorKind::RandomForest)));
  }
  const auto rows = synthetic_rows(FeatureSet::Classical, 1000, 123);

  ServiceOptions seq;
  seq.jobs = 1;
  seq.batch_grain = 64;
  EstimatorService sequential(dir.path(), seq);
  const auto base = sequential.predict_rows("m", rows);
  ASSERT_TRUE(base.has_value());

  // Unbatched reference: one estimate() per row through the same bundle.
  const auto bundle = sequential.bundle("m");
  ASSERT_NE(bundle, nullptr);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    ASSERT_EQ((*base)[i], bundle->estimator.predict_row(rows[i]));
  }

  for (int jobs : {2, 8}) {
    ServiceOptions par;
    par.jobs = jobs;
    par.batch_grain = 17;  // ragged last grain on purpose
    EstimatorService parallel(dir.path(), par);
    const auto out = parallel.predict_rows("m", rows);
    ASSERT_TRUE(out.has_value());
    ASSERT_EQ(out->size(), base->size());
    for (std::size_t i = 0; i < base->size(); ++i) {
      ASSERT_EQ((*out)[i], (*base)[i]) << "jobs " << jobs << " row " << i;
    }
  }
}

TEST(EstimatorService, ServesRealModulesEndToEnd) {
  TempDir dir("service_module");
  {
    ModelRegistry registry(dir.path());
    ASSERT_TRUE(registry.put(make_bundle(EstimatorKind::GradientBoosting)));
  }
  Rng rng(17);
  MixedParams params;
  params.luts = 120;
  params.ffs = 90;
  Module module = gen_mixed(params, rng);
  optimize(module.netlist);
  const ResourceReport report = make_report(module.netlist);
  const ShapeReport shape = quick_place(report);

  EstimatorService service(dir.path());
  const auto cf = service.estimate("m", report, shape);
  ASSERT_TRUE(cf.has_value());
  const auto bundle = service.bundle("m");
  ASSERT_NE(bundle, nullptr);
  EXPECT_EQ(*cf, bundle->estimator.estimate(report, shape));

  EXPECT_FALSE(service.estimate("no-such-model", report, shape).has_value());
  EXPECT_NE(service.last_error().find("no-such-model"), std::string::npos);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.bundle_loads, 1u);  // loaded once, then LRU-served
  EXPECT_GE(stats.lru_hits, 1u);
  EXPECT_GE(stats.requests, 1u);
}

TEST(EstimatorService, LruEvictsLeastRecentlyUsed) {
  TempDir dir("service_lru");
  {
    ModelRegistry registry(dir.path());
    ASSERT_TRUE(registry.put(make_bundle(EstimatorKind::DecisionTree, "a")));
    ASSERT_TRUE(registry.put(make_bundle(EstimatorKind::DecisionTree, "b")));
  }
  ServiceOptions options;
  options.max_loaded_bundles = 1;
  EstimatorService service(dir.path(), options);
  const auto rows = synthetic_rows(FeatureSet::Classical, 10, 1);

  ASSERT_TRUE(service.predict_rows("a", rows).has_value());
  ASSERT_TRUE(service.predict_rows("b", rows).has_value());  // evicts a
  ASSERT_TRUE(service.predict_rows("a", rows).has_value());  // reloads a

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.bundle_loads, 3u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.rows, 30u);
}

TEST(EstimatorService, ConcurrentRequestsAreSafeAndConsistent) {
  TempDir dir("service_threads");
  {
    ModelRegistry registry(dir.path());
    ASSERT_TRUE(registry.put(make_bundle(EstimatorKind::RandomForest, "a")));
    ASSERT_TRUE(registry.put(make_bundle(EstimatorKind::DecisionTree, "b")));
  }
  const auto rows = synthetic_rows(FeatureSet::Classical, 200, 55);

  ServiceOptions options;
  options.max_loaded_bundles = 1;  // force eviction races on purpose
  options.jobs = 2;
  EstimatorService service(dir.path(), options);
  const auto expect_a = service.predict_rows("a", rows);
  const auto expect_b = service.predict_rows("b", rows);
  ASSERT_TRUE(expect_a.has_value() && expect_b.has_value());

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      const std::string model = t % 2 == 0 ? "a" : "b";
      const auto& expected = t % 2 == 0 ? *expect_a : *expect_b;
      for (int round = 0; round < 5; ++round) {
        const auto out = service.predict_rows(model, rows);
        if (!out.has_value() || *out != expected) ++mismatches;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 42u);  // 2 warmups + 8 threads x 5 rounds
  EXPECT_EQ(stats.rows, 42u * 200u);
}

}  // namespace
}  // namespace mf
