#include "flow/rw_flow.hpp"

#include <gtest/gtest.h>

#include "fabric/catalog.hpp"
#include "flow/ground_truth.hpp"
#include "flow/monolithic.hpp"
#include "flow/serialize.hpp"
#include "nn/cnv_w1a1.hpp"
#include "nn/finn_blocks.hpp"
#include "rtlgen/generators.hpp"

namespace mf {
namespace {

/// Small synthetic block design: 3 unique blocks, 8 instances, a chain of
/// nets -- fast enough for per-test flow runs.
BlockDesign small_design() {
  BlockDesign design;
  Rng rng(1);
  MixedParams a;
  a.luts = 120;
  a.ffs = 100;
  design.unique_modules.push_back(gen_mixed(a, rng));
  design.unique_modules.back().name = "block_a";
  MixedParams bparams;
  bparams.luts = 60;
  bparams.ffs = 90;
  bparams.carry_adders = 1;
  design.unique_modules.push_back(gen_mixed(bparams, rng));
  design.unique_modules.back().name = "block_b";
  Rng rng2(2);
  design.unique_modules.push_back(gen_mvau({32, 1, 16, 1}, rng2));
  design.unique_modules.back().name = "block_c";

  const int pattern[] = {0, 1, 2, 1, 0, 2, 1, 1};
  for (int i = 0; i < 8; ++i) {
    design.instances.push_back(
        BlockInstance{"i" + std::to_string(i), pattern[i]});
  }
  for (int i = 0; i + 1 < 8; ++i) {
    design.nets.push_back(BlockNet{{i, i + 1}, 1.0});
  }
  return design;
}

RwFlowOptions fast_opts() {
  RwFlowOptions opts;
  opts.compute_timing = false;
  opts.stitch.moves_per_temp = 100;
  opts.stitch.cooling = 0.8;
  return opts;
}

TEST(ImplementBlock, ProducesValidMacro) {
  const Device dev = xc7z020_model();
  Rng rng(3);
  MixedParams p;
  p.luts = 150;
  p.ffs = 120;
  Module module = gen_mixed(p, rng);
  module.name = "m";
  const ImplementedBlock blk = implement_block(module, dev, 1.5, fast_opts());
  ASSERT_TRUE(blk.ok());
  EXPECT_EQ(blk.macro.name, "m");
  EXPECT_GT(blk.macro.used_slices, 0);
  EXPECT_GT(blk.macro.area(), 0);
  EXPECT_EQ(blk.macro.footprint.width(), blk.macro.pblock.width());
  EXPECT_GE(blk.macro.cf, 1.5);
  EXPECT_GE(blk.macro.tool_runs, 1);
}

TEST(ImplementBlock, TimingComputedWhenRequested) {
  const Device dev = xc7z020_model();
  Rng rng(4);
  MixedParams p;
  p.luts = 100;
  p.ffs = 80;
  Module module = gen_mixed(p, rng);
  RwFlowOptions opts = fast_opts();
  opts.compute_timing = true;
  const ImplementedBlock blk = implement_block(module, dev, 1.5, opts);
  ASSERT_TRUE(blk.ok());
  EXPECT_GT(blk.macro.longest_path_ns, 0.5);
}

TEST(RwFlow, ConstantPolicyImplementsAllBlocks) {
  const Device dev = xc7z020_model();
  const BlockDesign design = small_design();
  CfPolicy policy;
  policy.constant_cf = 1.8;
  const RwFlowResult r = run_rw_flow(design, dev, policy, fast_opts());
  EXPECT_EQ(r.failed_blocks, 0);
  EXPECT_EQ(r.blocks.size(), 3u);
  EXPECT_EQ(r.problem.instances.size(), 8u);
  EXPECT_EQ(r.stitch.unplaced, 0);
}

TEST(RwFlow, MinSearchFindsTighterPBlocksThanConstant) {
  const Device dev = xc7z020_model();
  const BlockDesign design = small_design();
  CfPolicy constant;
  constant.constant_cf = 2.0;
  CfPolicy min_search;
  min_search.mode = CfPolicy::Mode::MinSearch;
  const RwFlowResult c = run_rw_flow(design, dev, constant, fast_opts());
  const RwFlowResult m = run_rw_flow(design, dev, min_search, fast_opts());
  ASSERT_EQ(c.failed_blocks, 0);
  ASSERT_EQ(m.failed_blocks, 0);
  long c_area = 0;
  long m_area = 0;
  for (std::size_t i = 0; i < c.blocks.size(); ++i) {
    c_area += c.blocks[i].macro.area();
    m_area += m.blocks[i].macro.area();
  }
  EXPECT_LT(m_area, c_area);
}

TEST(RwFlow, NetsRemapToSurvivingInstances) {
  const Device dev = xc7z020_model();
  const BlockDesign design = small_design();
  CfPolicy policy;
  policy.constant_cf = 1.8;
  const RwFlowResult r = run_rw_flow(design, dev, policy, fast_opts());
  for (const BlockNet& net : r.problem.nets) {
    for (int inst : net.instances) {
      ASSERT_GE(inst, 0);
      ASSERT_LT(inst, static_cast<int>(r.problem.instances.size()));
    }
  }
}

TEST(ModuleCache, SecondRunHitsCache) {
  const Device dev = xc7z020_model();
  const BlockDesign design = small_design();
  CfPolicy policy;
  policy.constant_cf = 1.8;
  ModuleCache cache;
  const RwFlowResult first = cache.run(design, dev, policy, fast_opts());
  EXPECT_EQ(cache.misses(), 3);
  EXPECT_EQ(cache.hits(), 0);
  const int runs_first = first.total_tool_runs;
  EXPECT_GT(runs_first, 0);

  const RwFlowResult second = cache.run(design, dev, policy, fast_opts());
  EXPECT_EQ(cache.hits(), 3);
  EXPECT_EQ(second.total_tool_runs, 0);  // everything cached
  EXPECT_EQ(second.problem.instances.size(), first.problem.instances.size());
}

TEST(ModuleCache, DesignChangeOnlyRecompilesNewBlock) {
  const Device dev = xc7z020_model();
  BlockDesign design = small_design();
  CfPolicy policy;
  policy.constant_cf = 1.8;
  ModuleCache cache;
  cache.run(design, dev, policy, fast_opts());

  // DSE iteration: modify one block (new name = new configuration).
  Rng rng(9);
  MixedParams p;
  p.luts = 200;
  p.ffs = 64;
  design.unique_modules[1] = gen_mixed(p, rng);
  design.unique_modules[1].name = "block_b_v2";
  const RwFlowResult r = cache.run(design, dev, policy, fast_opts());
  EXPECT_EQ(cache.misses(), 4);  // only the new block compiled
  EXPECT_EQ(r.failed_blocks, 0);
}

TEST(ModuleCache, FailedBlockIsNeverStoredOrReused) {
  // Caching a failure would pin a transient tool fault forever; a block that
  // fails to implement must stay out of the cache and retry on the next run.
  const Device dev = xc7z020_model();
  const BlockDesign design = small_design();
  CfPolicy policy;
  policy.constant_cf = 0.3;  // far below any feasible CF
  RwFlowOptions opts = fast_opts();
  opts.search.max_cf = 0.4;
  ModuleCache cache;
  const RwFlowResult first = cache.run(design, dev, policy, opts);
  EXPECT_EQ(first.failed_blocks, 3);
  EXPECT_EQ(cache.size(), 0u);  // nothing stored
  EXPECT_EQ(cache.misses(), 3);
  for (const FlowError& err : first.errors) {
    EXPECT_EQ(err.kind, FlowErrorKind::Infeasible);
  }

  const RwFlowResult second = cache.run(design, dev, policy, opts);
  EXPECT_EQ(cache.hits(), 0);    // failures are never served from the cache
  EXPECT_EQ(cache.misses(), 6);  // every block retried
  EXPECT_GT(second.total_tool_runs, 0);
}

TEST(ModuleCache, ReloadedCacheReproducesTheSameMacros) {
  const Device dev = xc7z020_model();
  const BlockDesign design = small_design();
  CfPolicy policy;
  policy.constant_cf = 1.8;
  ModuleCache cache;
  const RwFlowResult first = cache.run(design, dev, policy, fast_opts());
  ASSERT_EQ(first.failed_blocks, 0);

  ModuleCache reloaded;
  const CacheLoadStats stats =
      module_cache_from_text(module_cache_to_text(cache), reloaded);
  ASSERT_TRUE(stats.complete);
  ASSERT_EQ(stats.corrupted, 0);
  const RwFlowResult second = reloaded.run(design, dev, policy, fast_opts());
  EXPECT_EQ(second.total_tool_runs, 0);  // everything resumed from checkpoint
  ASSERT_EQ(second.blocks.size(), first.blocks.size());
  for (std::size_t i = 0; i < first.blocks.size(); ++i) {
    EXPECT_DOUBLE_EQ(second.blocks[i].macro.cf, first.blocks[i].macro.cf);
    EXPECT_TRUE(second.blocks[i].macro.pblock == first.blocks[i].macro.pblock);
    EXPECT_EQ(second.blocks[i].macro.used_slices,
              first.blocks[i].macro.used_slices);
  }
  EXPECT_EQ(second.problem.instances.size(), first.problem.instances.size());
}

TEST(Monolithic, FlattenPreservesTotals) {
  const BlockDesign design = small_design();
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  const Module flat = flatten(design, &ranges);
  ASSERT_EQ(ranges.size(), design.instances.size());
  std::size_t expected = 0;
  for (const BlockInstance& inst : design.instances) {
    expected += design
                    .unique_modules[static_cast<std::size_t>(inst.macro)]
                    .netlist.num_cells();
  }
  EXPECT_EQ(flat.netlist.num_cells(), expected);
  EXPECT_EQ(ranges.back().second, expected);
}

TEST(Monolithic, PlacesSmallDesign) {
  const Device dev = xc7z020_model();
  const BlockDesign design = small_design();
  const MonolithicResult r = place_monolithic(design, dev);
  EXPECT_TRUE(r.feasible) << r.fail_reason;
  ASSERT_EQ(r.instance_slices.size(), design.instances.size());
  for (int slices : r.instance_slices) EXPECT_GT(slices, 0);
  EXPECT_GT(r.longest_path_ns, 0.0);
}

TEST(GroundTruth, LabelsSweepSamples) {
  const Device dev = xc7z020_model();
  const std::vector<GenSpec> specs = dataset_sweep({40, 11});
  const GroundTruth truth = build_ground_truth(specs, dev);
  EXPECT_GT(truth.samples.size(), 30u);
  for (const LabeledModule& s : truth.samples) {
    EXPECT_GE(s.min_cf, 0.9);
    EXPECT_GT(s.report.est_slices, 0);
  }
}

TEST(GroundTruth, LabelBlocksDropsTinyModules) {
  const Device dev = xc7z020_model();
  const CnvDesign design = build_cnv_w1a1();
  const GroundTruth all = label_blocks(design, dev, 0.5, 0);
  const GroundTruth filtered = label_blocks(design, dev, 0.5, 10);
  EXPECT_LT(filtered.samples.size(), all.samples.size());
}

}  // namespace
}  // namespace mf
