#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "synth/optimize.hpp"
#include "synth/report.hpp"

namespace mf {
namespace {

TEST(Optimize, SweepsDanglingLutCones) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId in = b.input("in");
  // A cone of LUTs whose final output is NOT marked: all dead.
  const NetId l1 = b.lut({in});
  const NetId l2 = b.lut({l1});
  b.lut({l2});
  // A kept cone.
  const NetId k1 = b.lut({in});
  nl.mark_output(k1);

  const OptimizeResult r = optimize(nl);
  EXPECT_EQ(r.swept, 3u);
  EXPECT_EQ(nl.num_cells(), 1u);
}

TEST(Optimize, NeverSweepsSequentialOrHardCells) {
  Netlist nl;
  NetlistBuilder b(nl);
  const ControlSetId cs = b.control_set();
  b.ff(b.input(), cs);   // unobserved FF: kept (holds state)
  b.srl(b.input(), cs);  // kept
  const std::vector<NetId> addr = b.input_bus(10, "a");
  b.bram18(addr, addr);  // kept
  optimize(nl);
  EXPECT_EQ(nl.num_cells(), 3u);
}

TEST(Optimize, LutFeedingFlopIsKept) {
  Netlist nl;
  NetlistBuilder b(nl);
  const ControlSetId cs = b.control_set();
  const NetId l = b.lut({b.input()});
  b.ff(l, cs);
  optimize(nl);
  EXPECT_EQ(nl.num_cells(), 2u);
}

TEST(Optimize, MergesStructuralDuplicates) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId x = b.input("x");
  const NetId y = b.input("y");
  const NetId a = b.lut({x, y});
  const NetId c = b.lut({x, y});  // duplicate of a
  const ControlSetId cs = b.control_set();
  const NetId fa = b.ff(a, cs);
  const NetId fc = b.ff(c, cs);
  nl.mark_output(fa);
  nl.mark_output(fc);

  const OptimizeResult r = optimize(nl);
  EXPECT_EQ(r.merged, 1u);
  // Both FFs must now read the surviving LUT's output.
  CellId lut_cell = kInvalidId;
  int luts = 0;
  for (std::size_t i = 0; i < nl.num_cells(); ++i) {
    if (nl.cell(static_cast<CellId>(i)).kind == CellKind::Lut) {
      ++luts;
      lut_cell = static_cast<CellId>(i);
    }
  }
  ASSERT_EQ(luts, 1);
  for (const Cell& cell : nl.cells()) {
    if (cell.kind == CellKind::Ff) {
      EXPECT_EQ(nl.net(cell.inputs.front()).driver, lut_cell);
    }
  }
}

TEST(Optimize, DifferentInputOrderNotMerged) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId x = b.input("x");
  const NetId y = b.input("y");
  const NetId a = b.lut({x, y});
  const NetId c = b.lut({y, x});  // different mask semantics possible
  const ControlSetId cs = b.control_set();
  nl.mark_output(b.ff(a, cs));
  nl.mark_output(b.ff(c, cs));
  EXPECT_EQ(optimize(nl).merged, 0u);
}

TEST(Optimize, OutputPortDriversSurvive) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId out = b.lut({b.input()});
  nl.mark_output(out);
  optimize(nl);
  EXPECT_EQ(nl.num_cells(), 1u);
}

TEST(Report, NaiveSliceEstimate) {
  Netlist nl;
  NetlistBuilder b(nl);
  const ControlSetId cs = b.control_set();
  // 9 LUTs -> 3 slices worth of LUT sites; 20 FFs -> 3 slices of FFs;
  // the estimate is the max.
  const std::vector<NetId> ins = b.input_bus(6, "x");
  for (int i = 0; i < 9; ++i) nl.mark_output(b.lut_layer(ins, 1, 3).front());
  for (int i = 0; i < 20; ++i) b.ff(ins[0], cs);
  const ResourceReport r = make_report(nl);
  EXPECT_EQ(r.slices_for_luts, 3);
  EXPECT_EQ(r.slices_for_ffs, 3);
  EXPECT_EQ(r.est_slices, 3);
}

TEST(Report, CarryDominatesWhenLongest) {
  Netlist nl;
  NetlistBuilder b(nl);
  const std::vector<NetId> a = b.input_bus(64, "a");
  const std::vector<NetId> sum = b.adder(a, a);
  for (NetId s : sum) nl.mark_output(s);
  const ResourceReport r = make_report(nl);
  EXPECT_EQ(r.slices_for_carry, 16);
  EXPECT_EQ(r.est_slices, std::max(r.slices_for_luts, 16));
}

TEST(Report, MSliceRequirement) {
  Netlist nl;
  NetlistBuilder b(nl);
  const ControlSetId cs = b.control_set();
  for (int i = 0; i < 10; ++i) b.srl(b.input(), cs);
  const ResourceReport r = make_report(nl);
  EXPECT_EQ(r.est_slices_m, 3);  // ceil(10/4)
}

TEST(Report, HardBlockDomination) {
  Netlist nl;
  NetlistBuilder b(nl);
  const std::vector<NetId> addr = b.input_bus(10, "a");
  for (int i = 0; i < 8; ++i) b.bram36(addr, addr);
  nl.mark_output(b.lut({addr[0]}));
  const ResourceReport r = make_report(nl);
  EXPECT_TRUE(r.uses_bram_or_dsp());
  EXPECT_TRUE(r.hard_block_dominated());
}

TEST(Report, LargeLogicNotHardBlockDominated) {
  Netlist nl;
  NetlistBuilder b(nl);
  const std::vector<NetId> ins = b.input_bus(16, "x");
  const std::vector<NetId> layer = b.lut_layer(ins, 800, 4);
  for (NetId n : layer) nl.mark_output(n);
  b.bram36(std::span<const NetId>(ins.data(), 10),
           std::span<const NetId>(ins.data(), 8));
  const ResourceReport r = make_report(nl);
  EXPECT_TRUE(r.uses_bram_or_dsp());
  EXPECT_FALSE(r.hard_block_dominated());
}

TEST(Report, EmptyNetlistHasMinimalEstimate) {
  Netlist nl;
  const ResourceReport r = make_report(nl);
  EXPECT_EQ(r.est_slices, 1);
}

}  // namespace
}  // namespace mf
