#!/bin/sh
# Assert the CLI's documented exit-code contract (macroflow_cli header):
#   0 success, 1 usage error, 2 runtime failure, 130 cancelled.
# Registered as ctest `cli_exit_codes` with $1 = path to macroflow_cli.
set -u

CLI=${1:?usage: cli_exit_codes.sh <path-to-macroflow_cli>}
TMP=$(mktemp -d "${TMPDIR:-/tmp}/mf_cli_exit.XXXXXX") || exit 2
trap 'rm -rf "$TMP"' EXIT
FAILURES=0

expect() {
  WANT=$1
  LABEL=$2
  shift 2
  "$@" > "$TMP/out" 2> "$TMP/err"
  GOT=$?
  if [ "$GOT" -ne "$WANT" ]; then
    echo "FAIL: $LABEL: expected exit $WANT, got $GOT" >&2
    sed 's/^/  stderr: /' "$TMP/err" >&2
    FAILURES=$((FAILURES + 1))
  else
    echo "ok: $LABEL (exit $GOT)"
  fi
}

# 0 -- success.
expect 0 "devices succeeds" "$CLI" devices

# 1 -- usage errors: no command, unknown command, bad flag value, unknown
# module name.
expect 1 "no command" "$CLI"
expect 1 "unknown command" "$CLI" frobnicate
expect 1 "bad numeric flag" "$CLI" sweep not-a-number
expect 1 "unknown module" "$CLI" implement no-such-module --min
expect 1 "bad deadline value" "$CLI" cnv --deadline-seconds nope

# 2 -- runtime failure: a bundle path that is not a bundle.
echo garbage > "$TMP/not-a-bundle.mfb"
expect 2 "corrupt bundle file" \
  "$CLI" predict shiftreg_0 --model "$TMP/not-a-bundle.mfb"

# 2 -- malformed stitch options fail fast (validated before any flow work
# starts, never silently falling back to the SA engine).
expect 2 "unknown stitch engine" "$CLI" cnv --stitch-engine frobnicate
expect 2 "stitch population below 2" "$CLI" cnv --stitch-population 1
expect 2 "non-positive stitch budget" "$CLI" cnv --stitch-budget 0

# 130 -- cancelled: a deadline that expires immediately. The flow must still
# exit cleanly (drain + checkpoint), just with the distinct status.
expect 130 "expired deadline" \
  "$CLI" cnv --deadline-seconds 0 --checkpoint "$TMP/cnv.ckpt"

# The cancelled run above must have checkpointed atomically: no temp litter.
if ls "$TMP"/cnv.ckpt.tmp.* > /dev/null 2>&1; then
  echo "FAIL: cancelled run left checkpoint temp files behind" >&2
  FAILURES=$((FAILURES + 1))
fi

# Resume after cancel: without a deadline the same checkpoint completes.
expect 0 "resume after cancel" "$CLI" cnv --checkpoint "$TMP/cnv.ckpt"

# -- farm: the whole supervised process tree obeys the same contract --------
FARM_COMMON="--count 8 --shards 2 --checkpoint-every 2 --workers 2 --quiet"

# 1 -- usage errors surface before any process is spawned.
expect 1 "farm without --dir" "$CLI" farm $FARM_COMMON
expect 1 "farm bad grid" "$CLI" farm --dir "$TMP/farm-bad" --grid nope
expect 1 "farm bad workers" "$CLI" farm --dir "$TMP/farm-bad" --workers 0

# 0 -- a clean farm completes and merges.
expect 0 "farm completes" "$CLI" farm --dir "$TMP/farm-a" $FARM_COMMON
expect 0 "farm resumes done shards" "$CLI" farm --dir "$TMP/farm-a" $FARM_COMMON

# Determinism across topologies: a single-shard single-worker farm of the
# same plan must produce the identical merged bytes.
expect 0 "farm single process" \
  "$CLI" farm --dir "$TMP/farm-b" --count 8 --shards 1 --workers 1 --quiet
if ! cmp -s "$TMP/farm-a/ground_truth.gt" "$TMP/farm-b/ground_truth.gt"; then
  echo "FAIL: sharded farm output differs from single-shard run" >&2
  FAILURES=$((FAILURES + 1))
else
  echo "ok: farm merge is byte-identical across topologies"
fi

# 0 -- injected SIGKILLs at every checkpoint boundary recover transparently
# and change nothing about the merged bytes.
expect 0 "farm recovers from chaos kills" \
  "$CLI" farm --dir "$TMP/farm-c" $FARM_COMMON \
  --chaos-kill 1.0 --chaos-faults 1 --max-attempts 3
if ! cmp -s "$TMP/farm-a/ground_truth.gt" "$TMP/farm-c/ground_truth.gt"; then
  echo "FAIL: chaos-kill farm output differs from clean run" >&2
  FAILURES=$((FAILURES + 1))
else
  echo "ok: chaos-kill farm merge is byte-identical to the clean run"
fi

# 2 -- a poison shard (faults never stop) is quarantined with a .reason
# trail; the farm still finishes the rest and reports the degradation.
expect 2 "farm quarantines poison shards" \
  "$CLI" farm --dir "$TMP/farm-d" $FARM_COMMON \
  --chaos-kill 1.0 --max-attempts 2
if ! ls "$TMP"/farm-d/quarantine/*.reason > /dev/null 2>&1; then
  echo "FAIL: quarantined farm left no .reason files" >&2
  FAILURES=$((FAILURES + 1))
else
  echo "ok: poison shards quarantined with .reason files"
fi

# 2 -- a farm directory holding a different plan is refused, not re-sharded.
expect 2 "farm refuses mismatched manifest" \
  "$CLI" farm --dir "$TMP/farm-a" --count 9 --shards 2 --workers 2 --quiet

# 130 -- an expired deadline tears the whole process tree down with the
# cancelled status; rerunning without the deadline resumes and completes.
expect 130 "farm expired deadline" \
  "$CLI" farm --dir "$TMP/farm-e" $FARM_COMMON --deadline-seconds 0
expect 0 "farm resume after cancel" "$CLI" farm --dir "$TMP/farm-e" $FARM_COMMON
if ! cmp -s "$TMP/farm-a/ground_truth.gt" "$TMP/farm-e/ground_truth.gt"; then
  echo "FAIL: resumed farm output differs from uninterrupted run" >&2
  FAILURES=$((FAILURES + 1))
else
  echo "ok: farm resumed after cancellation with identical bytes"
fi

# -- serve: the daemon obeys the same contract ------------------------------

# 1 -- usage errors: unknown flag, bad numeric value.
expect 1 "serve unknown flag" "$CLI" serve --stdio --frobnicate
expect 1 "serve bad coalesce value" "$CLI" serve --stdio --coalesce-us nope

# 2 -- semantic validation fails fast, before any socket is bound or
# request read (never a partial listen).
expect 2 "serve without socket or stdio" "$CLI" serve
expect 2 "serve with both socket and stdio" \
  "$CLI" serve --stdio --socket "$TMP/s.sock"
expect 2 "serve queue smaller than a batch" \
  "$CLI" serve --stdio --max-batch 64 --queue-capacity 4
expect 2 "serve unbindable socket path" \
  "$CLI" serve --socket "$TMP/no/such/dir/s.sock"

# 0 -- stdio happy path: train a tiny bundle, pipe the protocol through,
# EOF ends the session cleanly.
expect 0 "train bundle for serve" \
  "$CLI" train --kind linreg --name srv --count 24 \
  --registry "$TMP/serve-reg"
printf 'PING\nINFO srv\nESTIMATE c srv 1 2 3 4 5 6 7 8 9\n' \
  > "$TMP/serve-in"
expect 0 "serve stdio session" sh -c \
  "\"$CLI\" serve --stdio --registry \"$TMP/serve-reg\" < \"$TMP/serve-in\""
OK_LINES=$(grep -c '^OK ' "$TMP/out")
if [ "$OK_LINES" -ne 3 ]; then
  echo "FAIL: serve stdio session answered $OK_LINES OK lines, wanted 3" >&2
  sed 's/^/  stdout: /' "$TMP/out" >&2
  FAILURES=$((FAILURES + 1))
else
  echo "ok: serve stdio session answered every request"
fi

# 130 -- SIGINT mid-traffic: feed the daemon through a FIFO so it stays
# alive, interrupt it, and assert the drain exit status.
mkfifo "$TMP/serve-fifo"
"$CLI" serve --stdio --registry "$TMP/serve-reg" \
  < "$TMP/serve-fifo" > "$TMP/serve-sigint-out" 2>/dev/null &
SERVE_PID=$!
# Hold the FIFO open and trickle traffic while the signal lands.
exec 3> "$TMP/serve-fifo"
printf 'ESTIMATE c srv 1 2 3 4 5 6 7 8 9\n' >&3
sleep 1
kill -INT "$SERVE_PID"
wait "$SERVE_PID"
SERVE_STATUS=$?
exec 3>&-
if [ "$SERVE_STATUS" -ne 130 ]; then
  echo "FAIL: serve SIGINT: expected exit 130, got $SERVE_STATUS" >&2
  FAILURES=$((FAILURES + 1))
else
  echo "ok: serve SIGINT mid-traffic (exit 130)"
fi
if ! grep -q '^OK ' "$TMP/serve-sigint-out"; then
  echo "FAIL: serve dropped the request accepted before SIGINT" >&2
  FAILURES=$((FAILURES + 1))
else
  echo "ok: serve drained the in-flight request before exiting"
fi

# -- ping / supervised serve: the resilient-client verbs -------------------

# 1 -- usage errors: ping without a socket, malformed deadline.
expect 1 "ping without --socket" "$CLI" ping
expect 1 "ping bad deadline value" \
  "$CLI" ping --socket "$TMP/p.sock" --deadline-seconds nope

# 2 -- a socket nobody listens on is unreachable within the deadline.
expect 2 "ping dead socket" \
  "$CLI" ping --socket "$TMP/no-daemon.sock" --deadline-seconds 0.3

# 2 -- supervised mode needs a real socket, validated before any fork.
expect 2 "supervised needs a socket" "$CLI" serve --stdio --supervised
expect 2 "supervised rejects bad server flags" \
  "$CLI" serve --socket "$TMP/sup.sock" --supervised \
  --max-batch 64 --queue-capacity 4

# 0/130 -- a live supervised daemon answers ping; SIGINT tears the whole
# supervisor+child tree down with the cancelled status and removes the
# socket file.
"$CLI" serve --socket "$TMP/sup.sock" --registry "$TMP/serve-reg" \
  --supervised 2>/dev/null &
SUP_PID=$!
PING_OK=1
for _ in 1 2 3 4 5 6 7 8 9 10; do
  if "$CLI" ping --socket "$TMP/sup.sock" --deadline-seconds 1 \
      > /dev/null 2>&1; then
    PING_OK=0
    break
  fi
  sleep 0.5
done
if [ "$PING_OK" -ne 0 ]; then
  echo "FAIL: supervised daemon never answered ping" >&2
  FAILURES=$((FAILURES + 1))
else
  echo "ok: supervised daemon answers ping (exit 0)"
fi
kill -INT "$SUP_PID"
wait "$SUP_PID"
SUP_STATUS=$?
if [ "$SUP_STATUS" -ne 130 ]; then
  echo "FAIL: supervised SIGINT: expected exit 130, got $SUP_STATUS" >&2
  FAILURES=$((FAILURES + 1))
else
  echo "ok: supervised serve SIGINT (exit 130)"
fi
if [ -e "$TMP/sup.sock" ]; then
  echo "FAIL: supervised serve left its socket file behind" >&2
  FAILURES=$((FAILURES + 1))
else
  echo "ok: supervised serve removed its socket at shutdown"
fi

# -- convert: text <-> binary migration obeys the same contract -------------

# 1 -- usage errors: missing operands, unknown --to value.
expect 1 "convert without output" "$CLI" convert "$TMP/farm-a/ground_truth.gt"
expect 1 "convert bad --to" \
  "$CLI" convert "$TMP/farm-a/ground_truth.gt" "$TMP/gt.mfb" --to nope

# 2 -- runtime failures: missing input, input that is no known artifact.
expect 2 "convert missing input" \
  "$CLI" convert "$TMP/no-such-file.gt" "$TMP/gt.mfb"
echo garbage > "$TMP/garbage.gt"
expect 2 "convert unrecognised input" \
  "$CLI" convert "$TMP/garbage.gt" "$TMP/gt.mfb"

# 0 -- text -> binary -> text reproduces the original bytes exactly (the
# lossless-migration contract; the farm merge above supplies real data).
expect 0 "convert text to binary" \
  "$CLI" convert "$TMP/farm-a/ground_truth.gt" "$TMP/gt.mfb"
expect 0 "convert binary back to text" \
  "$CLI" convert "$TMP/gt.mfb" "$TMP/gt_roundtrip.gt"
if ! cmp -s "$TMP/farm-a/ground_truth.gt" "$TMP/gt_roundtrip.gt"; then
  echo "FAIL: convert text->binary->text changed the bytes" >&2
  FAILURES=$((FAILURES + 1))
else
  echo "ok: convert text->binary->text is byte-identical"
fi

[ "$FAILURES" -eq 0 ] || exit 1
exit 0
