#!/bin/sh
# Assert the CLI's documented exit-code contract (macroflow_cli header):
#   0 success, 1 usage error, 2 runtime failure, 130 cancelled.
# Registered as ctest `cli_exit_codes` with $1 = path to macroflow_cli.
set -u

CLI=${1:?usage: cli_exit_codes.sh <path-to-macroflow_cli>}
TMP=$(mktemp -d "${TMPDIR:-/tmp}/mf_cli_exit.XXXXXX") || exit 2
trap 'rm -rf "$TMP"' EXIT
FAILURES=0

expect() {
  WANT=$1
  LABEL=$2
  shift 2
  "$@" > "$TMP/out" 2> "$TMP/err"
  GOT=$?
  if [ "$GOT" -ne "$WANT" ]; then
    echo "FAIL: $LABEL: expected exit $WANT, got $GOT" >&2
    sed 's/^/  stderr: /' "$TMP/err" >&2
    FAILURES=$((FAILURES + 1))
  else
    echo "ok: $LABEL (exit $GOT)"
  fi
}

# 0 -- success.
expect 0 "devices succeeds" "$CLI" devices

# 1 -- usage errors: no command, unknown command, bad flag value, unknown
# module name.
expect 1 "no command" "$CLI"
expect 1 "unknown command" "$CLI" frobnicate
expect 1 "bad numeric flag" "$CLI" sweep not-a-number
expect 1 "unknown module" "$CLI" implement no-such-module --min
expect 1 "bad deadline value" "$CLI" cnv --deadline-seconds nope

# 2 -- runtime failure: a bundle path that is not a bundle.
echo garbage > "$TMP/not-a-bundle.mfb"
expect 2 "corrupt bundle file" \
  "$CLI" predict shiftreg_0 --model "$TMP/not-a-bundle.mfb"

# 130 -- cancelled: a deadline that expires immediately. The flow must still
# exit cleanly (drain + checkpoint), just with the distinct status.
expect 130 "expired deadline" \
  "$CLI" cnv --deadline-seconds 0 --checkpoint "$TMP/cnv.ckpt"

# The cancelled run above must have checkpointed atomically: no temp litter.
if ls "$TMP"/cnv.ckpt.tmp.* > /dev/null 2>&1; then
  echo "FAIL: cancelled run left checkpoint temp files behind" >&2
  FAILURES=$((FAILURES + 1))
fi

# Resume after cancel: without a deadline the same checkpoint completes.
expect 0 "resume after cancel" "$CLI" cnv --checkpoint "$TMP/cnv.ckpt"

[ "$FAILURES" -eq 0 ] || exit 1
exit 0
