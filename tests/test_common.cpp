#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"

namespace mf {
namespace {

TEST(Check, PassesOnTrue) { EXPECT_NO_THROW(MF_CHECK(1 + 1 == 2)); }

TEST(Check, ThrowsOnFalse) {
  EXPECT_THROW(MF_CHECK(false), CheckError);
  EXPECT_THROW(MF_CHECK_MSG(false, "context"), CheckError);
}

TEST(Check, MessageCarriesContext) {
  try {
    MF_CHECK_MSG(false, "the detail");
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("the detail"), std::string::npos);
  }
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.row().cell("a").cell(1);
  t.row().cell("long-name").cell(12345);
  const std::string out = t.str();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
  // Header + rule + 2 rows = 4 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, RejectsTooManyCells) {
  Table t({"only"});
  t.row().cell("x");
  EXPECT_THROW(t.cell("overflow"), CheckError);
}

TEST(Table, CellBeforeRowThrows) {
  Table t({"a"});
  EXPECT_THROW(t.cell("x"), CheckError);
}

TEST(Table, FormatsDoublesWithPrecision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(2.0, 3), "2.000");
}

TEST(BarChart, ScalesToPeak) {
  const std::string out = bar_chart({{"a", 10.0}, {"b", 5.0}}, 10);
  // "a" gets the full 10 hashes, "b" half.
  EXPECT_NE(out.find("##########"), std::string::npos);
  EXPECT_NE(out.find("#####"), std::string::npos);
}

TEST(Histogram, BucketsAndClampsOutliers) {
  const std::string out =
      histogram({0.95, 0.95, 1.05, 5.0 /* clamped into last bin */}, 0.9, 1.2,
                0.1, 10);
  EXPECT_NE(out.find("0.90"), std::string::npos);
  EXPECT_NE(out.find("1.00"), std::string::npos);
  EXPECT_NE(out.find("1.10"), std::string::npos);
}

TEST(Csv, EscapesSpecialCharacters) {
  CsvWriter csv({"a", "b"});
  csv.row().cell("plain").cell("with,comma");
  csv.row().cell("with\"quote").cell(1.5, 1);
  const std::string out = csv.str();
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
}

TEST(Csv, HeaderFirstLine) {
  CsvWriter csv({"x", "y"});
  csv.row().cell(1).cell(2);
  EXPECT_EQ(csv.str().substr(0, 4), "x,y\n");
}

}  // namespace
}  // namespace mf
