#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace mf {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.u64(), b.u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.u64() == b.u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.uniform();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(4, 4), 4);
  }
}

TEST(Rng, IndexStaysBelowBound) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_LT(rng.index(13), 13u);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  rng.shuffle(values);
  std::vector<int> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Rng, ShuffleActuallyMoves) {
  Rng rng(23);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  rng.shuffle(values);
  int moved = 0;
  for (int i = 0; i < 100; ++i) {
    if (values[static_cast<std::size_t>(i)] != i) ++moved;
  }
  EXPECT_GT(moved, 80);
}

TEST(Rng, ForkStreamsAreIndependent) {
  Rng parent(29);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.u64() == b.u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsDeterministic) {
  Rng p1(31);
  Rng p2(31);
  Rng a = p1.fork(5);
  Rng b = p2.fork(5);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.u64(), b.u64());
}

TEST(Rng, SplitMixDeterministic) {
  std::uint64_t s1 = 42;
  std::uint64_t s2 = 42;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace mf
