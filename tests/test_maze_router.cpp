#include "route/maze_router.hpp"

#include <gtest/gtest.h>

#include "core/cf_search.hpp"
#include "fabric/catalog.hpp"
#include "netlist/builder.hpp"
#include "rtlgen/generators.hpp"
#include "synth/optimize.hpp"

namespace mf {
namespace {

TEST(MazeRouter, EmptyNetlistRoutesTrivially) {
  Netlist nl;
  Placement placement;
  const MazeRouteResult r = maze_route(nl, placement, PBlock{0, 5, 0, 5});
  EXPECT_TRUE(r.routed);
  EXPECT_EQ(r.nets_routed, 0);
  EXPECT_EQ(r.total_wirelength, 0);
}

TEST(MazeRouter, SingleNetTakesManhattanPath) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId l1 = b.lut({b.input()});
  const NetId l2 = b.lut({l1});
  nl.mark_output(l2);
  Placement placement(nl.num_cells());
  placement[0] = {0, 0};
  placement[1] = {3, 4};
  const MazeRouteResult r = maze_route(nl, placement, PBlock{0, 9, 0, 9});
  EXPECT_TRUE(r.routed);
  EXPECT_EQ(r.nets_routed, 1);
  EXPECT_EQ(r.total_wirelength, 7);  // |dx| + |dy|
}

TEST(MazeRouter, FanoutSharesTreeEdges) {
  // A driver with two sinks on the same row: the shared trunk is counted
  // once (routing tree, not independent two-point paths).
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId src = b.lut({b.input()});
  const NetId s1 = b.lut({src});
  const NetId s2 = b.lut({src});
  nl.mark_output(s1);
  nl.mark_output(s2);
  Placement placement(nl.num_cells());
  placement[0] = {0, 0};  // driver
  placement[1] = {4, 0};
  placement[2] = {6, 0};
  const MazeRouteResult r = maze_route(nl, placement, PBlock{0, 9, 0, 3});
  EXPECT_TRUE(r.routed);
  EXPECT_EQ(r.total_wirelength, 6);  // 0->4 plus 4->6, trunk shared
}

TEST(MazeRouter, CongestionForcesDetoursOrOverflow) {
  // Many parallel nets through a 1-row corridor: far beyond one channel's
  // capacity, the router must report overflow.
  Netlist nl;
  NetlistBuilder b(nl);
  std::vector<CellId> drivers;
  const int kNets = 40;
  for (int i = 0; i < kNets; ++i) {
    const NetId d = b.lut({b.input()});
    nl.mark_output(b.lut({d}));
  }
  Placement placement(nl.num_cells());
  for (int i = 0; i < kNets; ++i) {
    placement[static_cast<std::size_t>(2 * i)] = {0, 0};
    placement[static_cast<std::size_t>(2 * i + 1)] = {7, 0};
  }
  MazeRouteOptions opts;
  opts.channel_capacity = 4;
  const MazeRouteResult r =
      maze_route(nl, placement, PBlock{0, 7, 0, 0}, opts);
  EXPECT_FALSE(r.routed);
  EXPECT_GT(r.max_overuse, 0);
}

TEST(MazeRouter, NegotiationResolvesModerateCongestion) {
  // Same corridor but with a second row available: negotiation should move
  // some nets to the alternate row and converge.
  Netlist nl;
  NetlistBuilder b(nl);
  const int kNets = 7;
  for (int i = 0; i < kNets; ++i) {
    const NetId d = b.lut({b.input()});
    nl.mark_output(b.lut({d}));
  }
  Placement placement(nl.num_cells());
  for (int i = 0; i < kNets; ++i) {
    placement[static_cast<std::size_t>(2 * i)] = {0, 0};
    placement[static_cast<std::size_t>(2 * i + 1)] = {5, 0};
  }
  MazeRouteOptions opts;
  opts.channel_capacity = 4;
  const MazeRouteResult r =
      maze_route(nl, placement, PBlock{0, 5, 0, 2}, opts);
  EXPECT_TRUE(r.routed) << "overflow " << r.overflow_edges;
  EXPECT_GT(r.iterations, 0);
}

TEST(MazeRouter, ValidatesTheProxyDirection) {
  // The fast proxy's verdicts must rank placements like the real router:
  // a placement squeezed below the minimal CF shows more over-use than the
  // placement at the minimal CF.
  const Device dev = xc7z020_model();
  Rng rng(1);
  MixedParams params;
  params.luts = 400;
  params.ffs = 350;
  params.carry_adders = 2;
  params.control_sets = 3;
  Module m = gen_mixed(params, rng);
  optimize(m.netlist);
  const ResourceReport report = make_report(m.netlist);
  const ShapeReport shape = quick_place(report);
  const CfSearchResult at_min = find_min_cf(m, report, shape, dev);
  ASSERT_TRUE(at_min.found);
  ASSERT_GE(at_min.min_cf, 1.1);

  const auto tight_pb =
      generate_pblock(dev, report, shape, at_min.min_cf - 0.2);
  ASSERT_TRUE(tight_pb.has_value());
  DetailedPlaceOptions no_proxy;
  no_proxy.check_routability = false;
  const PlaceResult tight =
      place_in_pblock(m, report, dev, *tight_pb, no_proxy);
  ASSERT_GT(tight.used_slices, 0);

  const MazeRouteResult r_min =
      maze_route(m.netlist, at_min.place.placement, at_min.pblock);
  const MazeRouteResult r_tight =
      maze_route(m.netlist, tight.placement, *tight_pb);
  EXPECT_GT(r_tight.max_overuse, r_min.max_overuse);
}

TEST(MazeRouter, DeterministicResult) {
  Netlist nl;
  NetlistBuilder b(nl);
  for (int i = 0; i < 10; ++i) {
    nl.mark_output(b.lut({b.lut({b.input()})}));
  }
  Placement placement(nl.num_cells());
  for (std::size_t i = 0; i < placement.size(); ++i) {
    placement[i] = {static_cast<std::int16_t>(i % 5),
                    static_cast<std::int16_t>(i / 5)};
  }
  const MazeRouteResult a = maze_route(nl, placement, PBlock{0, 5, 0, 5});
  const MazeRouteResult c = maze_route(nl, placement, PBlock{0, 5, 0, 5});
  EXPECT_EQ(a.total_wirelength, c.total_wirelength);
  EXPECT_EQ(a.overflow_edges, c.overflow_edges);
}

}  // namespace
}  // namespace mf
