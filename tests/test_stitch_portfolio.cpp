// The engine-portfolio contract, pinned four ways:
//
//   1. history: the restarts = 1 SA cost trace serialises to the exact
//      bytes of tests/data/golden_sa_trace.txt (captured before the engine
//      split), and racing `portfolio = {sa}` reproduces the plain single
//      anneal move for move -- the portfolio layer adds nothing to a
//      pure-SA run;
//   2. legality: every alternative engine (evo, analytic, warm-started SA)
//      returns footprint-legal, overlap-free, correctly costed placements
//      on every catalog device;
//   3. determinism: a portfolio race is bit-identical at any `jobs` value
//      (ctest re-runs this suite as `stitch_portfolio_jobs` with
//      MF_TEST_JOBS=8), the analytic engine ignores the seed entirely, and
//      observing `target_cost` never perturbs a run;
//   4. validation: malformed StitchOptions fail fast with CheckError
//      instead of silently falling back to SA.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "fabric/catalog.hpp"
#include "stitch/engine.hpp"
#include "stitch/sa_stitcher.hpp"

namespace mf {
namespace {

/// Same mixed problem as test_stitch_incremental: three macro shapes, one
/// BRAM-bound, 36 instances in a chain. The golden trace fixture is tied
/// to this exact problem -- do not reshape it.
StitchProblem mixed_problem(const Device& dev) {
  StitchProblem problem;
  auto add_macro = [&](const char* name, int col0, int w, int h, bool hard) {
    Macro m;
    m.name = name;
    m.pblock = PBlock{col0, col0 + w - 1, 0, h - 1};
    m.footprint = footprint_of(dev, m.pblock, hard);
    m.used_slices = w * h;
    problem.macros.push_back(std::move(m));
  };
  add_macro("small", 0, 3, 8, false);
  add_macro("wide", 3, 9, 12, false);
  int bram_col = -1;
  for (int c = 0; c < dev.num_columns(); ++c) {
    if (dev.column(c) == ColumnKind::Bram) {
      bram_col = c;
      break;
    }
  }
  add_macro("brammy", bram_col - 1, 3, 10, true);

  int next = 0;
  auto instances = [&](int macro, int count) {
    for (int i = 0; i < count; ++i) {
      problem.instances.push_back(
          BlockInstance{"i" + std::to_string(next++), macro});
    }
  };
  instances(0, 20);
  instances(1, 10);
  instances(2, 6);
  for (int i = 0; i + 1 < next; ++i) {
    problem.nets.push_back(BlockNet{{i, i + 1}, 1.0});
  }
  return problem;
}

StitchOptions golden_opts(std::uint64_t seed) {
  StitchOptions opts;
  opts.seed = seed;
  opts.moves_per_temp = 150;
  opts.cooling = 0.85;
  return opts;
}

int env_jobs() {
  if (const char* jobs = std::getenv("MF_TEST_JOBS")) {
    const int n = std::atoi(jobs);
    if (n > 0) return n;
  }
  return 8;
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 0x100000001b3ULL;
  return h;
}

std::uint64_t positions_hash(const StitchResult& r) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const BlockPlacement& p : r.positions) {
    h = mix(h, static_cast<std::uint64_t>(p.col));
    h = mix(h, static_cast<std::uint64_t>(p.row));
  }
  return h;
}

std::uint64_t trace_hash(const StitchResult& r) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& [move, cost] : r.cost_trace) {
    h = mix(h, static_cast<std::uint64_t>(move));
    h = mix(h, std::bit_cast<std::uint64_t>(cost));
  }
  return h;
}

void expect_identical(const StitchResult& a, const StitchResult& b) {
  EXPECT_EQ(a.total_moves, b.total_moves);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.illegal, b.illegal);
  EXPECT_EQ(a.unplaced, b.unplaced);
  EXPECT_EQ(a.converge_move, b.converge_move);
  EXPECT_EQ(a.engine, b.engine);
  EXPECT_EQ(a.restart_index, b.restart_index);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.wirelength),
            std::bit_cast<std::uint64_t>(b.wirelength));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.cost),
            std::bit_cast<std::uint64_t>(b.cost));
  EXPECT_EQ(positions_hash(a), positions_hash(b));
  EXPECT_EQ(trace_hash(a), trace_hash(b));
}

/// Every placed instance sits on a legal anchor, no two footprints share a
/// cell, and cost == wirelength + penalty * unplaced.
void expect_legal(const Device& dev, const StitchProblem& problem,
                  const StitchResult& r) {
  ASSERT_EQ(r.positions.size(), problem.instances.size());
  std::vector<int> grid(static_cast<std::size_t>(dev.num_columns()) *
                            static_cast<std::size_t>(dev.rows()),
                        -1);
  int placed = 0;
  for (std::size_t i = 0; i < r.positions.size(); ++i) {
    const BlockPlacement& p = r.positions[i];
    if (!p.placed()) continue;
    ++placed;
    const Macro& macro =
        problem.macros[static_cast<std::size_t>(problem.instances[i].macro)];
    ASSERT_TRUE(footprint_fits(dev, macro.footprint, p.col, p.row,
                               macro.pblock.row_lo))
        << "illegal anchor for " << problem.instances[i].name;
    for (int c = p.col; c < p.col + macro.footprint.width(); ++c) {
      for (int row = p.row; row < p.row + macro.footprint.height; ++row) {
        auto& cell = grid[static_cast<std::size_t>(c) *
                              static_cast<std::size_t>(dev.rows()) +
                          static_cast<std::size_t>(row)];
        ASSERT_EQ(cell, -1) << "overlap at " << c << "," << row;
        cell = static_cast<int>(i);
      }
    }
  }
  EXPECT_EQ(placed + r.unplaced, static_cast<int>(problem.instances.size()));
  const double penalty = 4.0 * (dev.num_columns() + dev.rows());
  EXPECT_NEAR(r.cost, r.wirelength + penalty * r.unplaced, 1e-6);
  EXPECT_GE(r.wirelength, 0.0);
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << "missing fixture " << path;
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

// -- 1. history --------------------------------------------------------------

TEST(StitchPortfolio, SaTraceMatchesGoldenFixtureByteForByte) {
  const Device dev = xc7z020_model();
  const StitchResult r = stitch(dev, mixed_problem(dev), golden_opts(1));
  EXPECT_EQ(r.engine, "sa");
  const std::string golden =
      read_file(std::string(MF_TEST_DATA_DIR) + "/golden_sa_trace.txt");
  EXPECT_EQ(trace_to_text(r), golden);
}

TEST(StitchPortfolio, PureSaPortfolioReproducesThePlainAnneal) {
  const Device dev = xc7z020_model();
  const StitchProblem problem = mixed_problem(dev);
  const StitchResult plain = stitch(dev, problem, golden_opts(7));
  StitchOptions opts = golden_opts(7);
  opts.engine = StitchEngine::Portfolio;
  opts.portfolio = {StitchEngine::Sa};
  const StitchResult raced = stitch(dev, problem, opts);
  expect_identical(plain, raced);
  ASSERT_EQ(raced.engines.size(), 1u);
  EXPECT_EQ(raced.engines[0].engine, "sa");
  EXPECT_FALSE(raced.engines[0].warm_start);
  EXPECT_EQ(raced.engines[0].seed, 7u);
  EXPECT_EQ(raced.engines[0].moves, plain.total_moves);
  EXPECT_EQ(raced.engines[0].evals, plain.accepted + plain.rejected);
}

TEST(StitchPortfolio, ObservingTargetCostNeverPerturbsARun) {
  const Device dev = xc7z020_model();
  const StitchProblem problem = mixed_problem(dev);
  const StitchResult cold = stitch(dev, problem, golden_opts(2));
  StitchOptions opts = golden_opts(2);
  opts.target_cost = cold.cost;  // generous: the run reaches it by the end
  const StitchResult watched = stitch(dev, problem, opts);
  expect_identical(cold, watched);
  EXPECT_GE(watched.target_move, 0);
  EXPECT_LE(watched.target_move, watched.total_moves);
  EXPECT_EQ(cold.target_move, -1);  // no target, never observed
}

// -- 2. legality on every catalog device ------------------------------------

TEST(StitchPortfolio, EvoIsLegalOnEveryCatalogDevice) {
  for (const Device& dev : {xc7z020_model(), xc7z045_model()}) {
    const StitchProblem problem = mixed_problem(dev);
    StitchOptions opts = golden_opts(3);
    opts.engine = StitchEngine::Evo;
    const StitchResult r = stitch(dev, problem, opts);
    EXPECT_EQ(r.engine, "evo");
    expect_legal(dev, problem, r);
    // Reproducible per seed.
    expect_identical(r, stitch(dev, problem, opts));
  }
}

TEST(StitchPortfolio, AnalyticIsLegalAndSeedFreeOnEveryCatalogDevice) {
  for (const Device& dev : {xc7z020_model(), xc7z045_model()}) {
    const StitchProblem problem = mixed_problem(dev);
    StitchOptions opts = golden_opts(4);
    opts.engine = StitchEngine::Analytic;
    const StitchResult r = stitch(dev, problem, opts);
    EXPECT_EQ(r.engine, "analytic");
    expect_legal(dev, problem, r);
    // The pre-placer is deterministic and ignores the seed entirely.
    StitchOptions reseeded = opts;
    reseeded.seed = 0xdecafbadULL;
    expect_identical(r, stitch(dev, problem, reseeded));
  }
}

TEST(StitchPortfolio, WarmStartedSaIsLegalAndDeterministic) {
  const Device dev = xc7z020_model();
  const StitchProblem problem = mixed_problem(dev);
  StitchOptions opts = golden_opts(5);
  opts.warm_start = true;
  const StitchResult r = stitch(dev, problem, opts);
  expect_legal(dev, problem, r);
  expect_identical(r, stitch(dev, problem, opts));
  // Warm start changes the run (seeded placement + quenched schedule).
  const StitchResult cold = stitch(dev, problem, golden_opts(5));
  EXPECT_NE(positions_hash(r), positions_hash(cold));
}

// -- 3. portfolio determinism ------------------------------------------------

TEST(StitchPortfolio, RaceIsBitIdenticalAtAnyJobs) {
  const Device dev = xc7z020_model();
  const StitchProblem problem = mixed_problem(dev);
  StitchOptions opts = golden_opts(6);
  opts.engine = StitchEngine::Portfolio;  // default analytic + sa + evo race
  opts.jobs = 1;
  const StitchResult serial = stitch(dev, problem, opts);
  opts.jobs = env_jobs();
  const StitchResult wide = stitch(dev, problem, opts);
  expect_identical(serial, wide);
  ASSERT_EQ(serial.engines.size(), wide.engines.size());
  for (std::size_t i = 0; i < serial.engines.size(); ++i) {
    const EngineStats& a = serial.engines[i];
    const EngineStats& b = wide.engines[i];
    EXPECT_EQ(a.engine, b.engine);
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.warm_start, b.warm_start);
    EXPECT_EQ(a.moves, b.moves);
    EXPECT_EQ(a.evals, b.evals);
    EXPECT_EQ(a.unplaced, b.unplaced);
    EXPECT_EQ(a.target_move, b.target_move);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.best_cost),
              std::bit_cast<std::uint64_t>(b.best_cost));
    // seconds is wall clock and is allowed to differ.
  }
}

TEST(StitchPortfolio, WinnerIsLowestCostThenLowestConfigIndex) {
  const Device dev = xc7z020_model();
  const StitchProblem problem = mixed_problem(dev);
  StitchOptions opts = golden_opts(6);
  opts.engine = StitchEngine::Portfolio;
  const StitchResult r = stitch(dev, problem, opts);
  ASSERT_EQ(r.engines.size(), 3u);  // analytic + sa + evo, one seed each
  expect_legal(dev, problem, r);
  long sum = 0;
  for (const EngineStats& s : r.engines) {
    sum += s.moves;
    // Winner rule: strictly-lower cost wins; ties keep the lowest index.
    if (s.config < r.restart_index) EXPECT_GT(s.best_cost, r.cost);
    EXPECT_GE(s.best_cost, r.cost);
  }
  EXPECT_EQ(r.restart_moves, sum);
  const EngineStats& winner =
      r.engines[static_cast<std::size_t>(r.restart_index)];
  EXPECT_EQ(std::bit_cast<std::uint64_t>(winner.best_cost),
            std::bit_cast<std::uint64_t>(r.cost));
  EXPECT_EQ(winner.engine, r.engine);
  EXPECT_EQ(winner.moves, r.total_moves);
  // The cost trace belongs to the winning engine only.
  const std::string header = trace_to_text(r);
  EXPECT_EQ(header.rfind("macroflow-cost-trace v1 engine=" + r.engine, 0), 0u);
}

// -- 4. fail-fast validation -------------------------------------------------

TEST(StitchPortfolio, MalformedOptionsThrowInsteadOfFallingBackToSa) {
  const Device dev = xc7z020_model();
  const StitchProblem problem = mixed_problem(dev);
  auto with = [&](auto tweak) {
    StitchOptions opts = golden_opts(1);
    tweak(opts);
    return opts;
  };
  EXPECT_THROW(
      stitch(dev, problem, with([](StitchOptions& o) { o.restarts = 0; })),
      CheckError);
  EXPECT_THROW(
      stitch(dev, problem, with([](StitchOptions& o) { o.jobs = -1; })),
      CheckError);
  EXPECT_THROW(stitch(dev, problem,
                      with([](StitchOptions& o) { o.evo_population = 1; })),
               CheckError);
  EXPECT_THROW(stitch(dev, problem,
                      with([](StitchOptions& o) { o.engine_budget = -1; })),
               CheckError);
  EXPECT_THROW(stitch(dev, problem,
                      with([](StitchOptions& o) { o.target_cost = -0.5; })),
               CheckError);
  EXPECT_THROW(stitch(dev, problem,
                      with([](StitchOptions& o) {
                        o.engine = StitchEngine::Portfolio;
                        o.portfolio = {StitchEngine::Portfolio};
                      })),
               CheckError);
  EXPECT_THROW(stitch(dev, problem,
                      with([](StitchOptions& o) {
                        o.portfolio = {StitchEngine::Evo};  // engine still sa
                      })),
               CheckError);
  // Unknown engine names never reach the library: the parser rejects them.
  EXPECT_EQ(stitch_engine_from_string("frobnicate"), std::nullopt);
  EXPECT_EQ(stitch_engine_from_string(""), std::nullopt);
}

}  // namespace
}  // namespace mf
