// Property tests over the feasibility oracle, swept across the dataset:
// whatever module the generators produce, a successful minimal-CF search
// must yield a *legal* placement (slice capacities, control sets, chain
// contiguity, M-typing, bounds) and be deterministic.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/cf_search.hpp"
#include "fabric/catalog.hpp"
#include "rtlgen/sweep.hpp"
#include "synth/optimize.hpp"

namespace mf {
namespace {

struct OracleCase {
  Module module;
  ResourceReport report;
  ShapeReport shape;
  CfSearchResult result;
};

OracleCase run_case(int index) {
  static const std::vector<GenSpec> specs = dataset_sweep({2000, 42});
  // Spread the parameter over the whole sweep so every family is hit.
  const std::size_t pick =
      static_cast<std::size_t>(index) * (specs.size() - 1) / 11;
  OracleCase c{realize(specs[pick]), {}, {}, {}};
  optimize(c.module.netlist);
  c.report = make_report(c.module.netlist);
  c.shape = quick_place(c.report);
  c.result = find_min_cf(c.module, c.report, c.shape, xc7z020_model());
  return c;
}

class OracleProperty : public ::testing::TestWithParam<int> {};

TEST_P(OracleProperty, MinCfPlacementIsLegal) {
  const Device dev = xc7z020_model();
  const OracleCase c = run_case(GetParam());
  ASSERT_TRUE(c.result.found) << c.module.name;
  const PlaceResult& place = c.result.place;
  ASSERT_TRUE(place.feasible);

  const Netlist& nl = c.module.netlist;
  std::map<std::pair<int, int>, int> lut_sites;
  std::map<std::pair<int, int>, int> ff_count;
  std::map<std::pair<int, int>, std::set<ControlSetId>> cs_in_slice;
  std::map<std::pair<int, int>, int> carry_in_slice;

  for (std::size_t i = 0; i < nl.num_cells(); ++i) {
    const Cell& cell = nl.cell(static_cast<CellId>(i));
    const CellPlacement& p = place.placement[i];
    ASSERT_TRUE(p.placed()) << c.module.name << " cell " << i;
    ASSERT_TRUE(c.result.pblock.contains(p.col, p.row))
        << c.module.name << " cell outside PBlock";
    const auto key = std::make_pair<int, int>(p.col, p.row);
    switch (cell.kind) {
      case CellKind::Lut:
      case CellKind::Srl:
      case CellKind::LutRam:
        ++lut_sites[key];
        if (cell.kind != CellKind::Lut) {
          ASSERT_EQ(dev.column(p.col), ColumnKind::ClbM)
              << c.module.name << " memory cell in L slice";
        }
        break;
      case CellKind::Ff:
        ++ff_count[key];
        cs_in_slice[key].insert(cell.control_set);
        break;
      case CellKind::Carry4:
        ++carry_in_slice[key];
        break;
      case CellKind::Bram18:
        ASSERT_EQ(dev.column(p.col), ColumnKind::Bram);
        break;
      case CellKind::Bram36:
        ASSERT_EQ(dev.column(p.col), ColumnKind::Bram);
        break;
      case CellKind::Dsp48:
        ASSERT_EQ(dev.column(p.col), ColumnKind::Dsp);
        break;
    }
  }
  for (const auto& [pos, n] : lut_sites) {
    ASSERT_LE(n, kLutsPerSlice) << c.module.name;
  }
  for (const auto& [pos, n] : ff_count) {
    ASSERT_LE(n, kFfsPerSlice) << c.module.name;
  }
  for (const auto& [pos, sets] : cs_in_slice) {
    ASSERT_LE(sets.size(), 2u) << c.module.name;
  }
  for (const auto& [pos, n] : carry_in_slice) {
    ASSERT_LE(n, kCarryPerSlice) << c.module.name;
  }
}

TEST_P(OracleProperty, SearchIsDeterministic) {
  const OracleCase a = run_case(GetParam());
  const OracleCase b = run_case(GetParam());
  ASSERT_EQ(a.result.found, b.result.found);
  if (!a.result.found) return;
  EXPECT_DOUBLE_EQ(a.result.min_cf, b.result.min_cf);
  EXPECT_EQ(a.result.pblock, b.result.pblock);
  EXPECT_EQ(a.result.place.used_slices, b.result.place.used_slices);
}

TEST_P(OracleProperty, UsedSlicesNeverExceedPBlock) {
  const Device dev = xc7z020_model();
  const OracleCase c = run_case(GetParam());
  ASSERT_TRUE(c.result.found);
  const FabricResources avail = dev.resources_in(c.result.pblock);
  EXPECT_LE(c.result.place.used_slices, avail.slices);
  EXPECT_GE(c.result.place.used_slices,
            std::min(c.report.est_slices, avail.slices) / 2);
}

TEST_P(OracleProperty, MinCfWithinSearchBounds) {
  const OracleCase c = run_case(GetParam());
  ASSERT_TRUE(c.result.found);
  EXPECT_GE(c.result.min_cf, 0.9 - 1e-9);
  EXPECT_LE(c.result.min_cf, 3.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AcrossDataset, OracleProperty,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace mf
