// CfEstimator facade + end-to-end estimator-in-the-flow integration.

#include "core/estimator.hpp"

#include <gtest/gtest.h>

#include "fabric/catalog.hpp"
#include "flow/ground_truth.hpp"
#include "flow/rw_flow.hpp"
#include "ml/metrics.hpp"
#include "synth/optimize.hpp"

namespace mf {
namespace {

/// Shared ground truth over a small sweep (built once; ~1-2 s).
class EstimatorFixture : public ::testing::Test {
 protected:
  static const GroundTruth& truth() {
    static const GroundTruth instance = [] {
      const Device dev = xc7z020_model();
      return build_ground_truth(dataset_sweep({250, 21}), dev);
    }();
    return instance;
  }
};

TEST_F(EstimatorFixture, GroundTruthIsUsable) {
  EXPECT_GT(truth().samples.size(), 200u);
}

TEST_F(EstimatorFixture, UntrainedEstimatorRejectsQueries) {
  CfEstimator est(EstimatorKind::DecisionTree, FeatureSet::Additional);
  EXPECT_FALSE(est.trained());
  EXPECT_THROW(est.predict_row({0.1, 0.2, 0.3, 0.4, 0.5, 0.6}), CheckError);
}

TEST_F(EstimatorFixture, FeatureSetMismatchRejected) {
  CfEstimator est(EstimatorKind::DecisionTree, FeatureSet::Additional);
  const Dataset wrong =
      make_dataset(FeatureSet::ClassicalStar, truth().samples);
  EXPECT_THROW(est.train(wrong), CheckError);
}

class EstimatorKindTest
    : public ::testing::TestWithParam<EstimatorKind> {
 protected:
  static const GroundTruth& truth() {
    static const GroundTruth instance = [] {
      const Device dev = xc7z020_model();
      return build_ground_truth(dataset_sweep({250, 21}), dev);
    }();
    return instance;
  }
};

TEST_P(EstimatorKindTest, TrainsAndPredictsInRange) {
  const FeatureSet set = GetParam() == EstimatorKind::LinearRegression
                             ? FeatureSet::LinReg9
                             : FeatureSet::All;
  CfEstimator::Options options;
  options.rforest.trees = 60;  // keep unit-test runtime low
  options.mlp.epochs = 80;
  CfEstimator est(GetParam(), set, options);
  const Dataset data = make_dataset(set, truth().samples);
  est.train(data);
  EXPECT_TRUE(est.trained());

  const auto pred = est.predict_rows(data.x);
  const double err = mean_relative_error(pred, data.y);
  // In-sample error should be clearly better than guessing the midpoint.
  EXPECT_LT(err, 0.15) << to_string(GetParam());
  for (double v : pred) {
    EXPECT_GT(v, 0.3);
    EXPECT_LT(v, 3.5);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, EstimatorKindTest,
                         ::testing::Values(EstimatorKind::LinearRegression,
                                           EstimatorKind::NeuralNetwork,
                                           EstimatorKind::DecisionTree,
                                           EstimatorKind::RandomForest));

TEST_F(EstimatorFixture, TreeImportancesExposed) {
  CfEstimator::Options options;
  CfEstimator tree(EstimatorKind::DecisionTree, FeatureSet::Additional,
                   options);
  tree.train(make_dataset(FeatureSet::Additional, truth().samples));
  const std::vector<double> imp = tree.feature_importance();
  ASSERT_EQ(imp.size(), feature_names(FeatureSet::Additional).size());
  double total = 0.0;
  for (double v : imp) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(EstimatorFixture, NonTreeModelsHaveNoImportance) {
  CfEstimator lin(EstimatorKind::LinearRegression, FeatureSet::LinReg9);
  lin.train(make_dataset(FeatureSet::LinReg9, truth().samples));
  EXPECT_TRUE(lin.feature_importance().empty());
}

TEST_F(EstimatorFixture, EstimateFromReports) {
  CfEstimator est(EstimatorKind::DecisionTree, FeatureSet::Additional);
  est.train(make_dataset(FeatureSet::Additional, truth().samples));
  const LabeledModule& sample = truth().samples.front();
  const double cf = est.estimate(sample.report, sample.shape);
  EXPECT_GT(cf, 0.5);
  EXPECT_LT(cf, 3.0);
}

TEST_F(EstimatorFixture, EstimatorPolicyBeatsConstantLowSeed) {
  // Section VIII integration: an estimator-seeded flow needs fewer tool runs
  // than the constant-CF=0.9 search on unseen modules.
  const Device dev = xc7z020_model();
  CfEstimator est(EstimatorKind::RandomForest, FeatureSet::Additional,
                  [] {
                    CfEstimator::Options o;
                    o.rforest.trees = 80;
                    return o;
                  }());
  est.train(make_dataset(FeatureSet::Additional, truth().samples));

  // Fresh modules from a different sweep seed; take the random Mixed tail
  // (the grid prefix of the sweep is seed-independent).
  std::vector<GenSpec> specs = dataset_sweep({700, 77});
  specs.erase(specs.begin(), specs.end() - 40);
  RwFlowOptions opts;
  opts.compute_timing = false;
  int runs_estimator = 0;
  int runs_constant = 0;
  int compared = 0;
  for (const GenSpec& spec : specs) {
    if (spec.kind != GenKind::Mixed) continue;  // unseen-ish family mix
    Module module = realize(spec);
    const ImplementedBlock with_est = [&] {
      Module copy = module;
      optimize(copy.netlist);
      const ResourceReport report = make_report(copy.netlist);
      const double cf = est.estimate(report, quick_place(report));
      return implement_block(module, dev, cf, opts);
    }();
    const ImplementedBlock with_const = implement_block(module, dev, 0.9,
                                                        opts);
    if (!with_est.ok() || !with_const.ok()) continue;
    runs_estimator += with_est.macro.tool_runs;
    runs_constant += with_const.macro.tool_runs;
    ++compared;
  }
  ASSERT_GT(compared, 5);
  EXPECT_LT(runs_estimator, runs_constant);
}

}  // namespace
}  // namespace mf
