// Corruption-injection suite: every persisted format (ground-truth sets,
// module-cache checkpoints, model bundles) is attacked with zero-length
// files, truncation at every byte boundary, byte flips, and CRLF rewrites.
// The invariant under attack is "fail cleanly or parse the original" --
// loaders must never crash, never silently return different data, and the
// checksummed formats (cache entries, bundles) must detect every flip.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "flow/rw_flow.hpp"
#include "flow/serialize.hpp"
#include "serve/bundle.hpp"

namespace mf {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_((fs::temp_directory_path() /
               ("mf_corrupt_" + tag + "_" + std::to_string(::getpid())))
                  .string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (fs::path(path_) / name).string();
  }

 private:
  std::string path_;
};

void write_raw(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

std::string crlf(const std::string& text) {
  std::string out;
  out.reserve(text.size() * 2);
  for (char c : text) {
    if (c == '\n') out += '\r';
    out += c;
  }
  return out;
}

std::vector<LabeledModule> sample_ground_truth() {
  std::vector<LabeledModule> samples;
  for (int i = 0; i < 3; ++i) {
    LabeledModule s;
    s.name = "mod_" + std::to_string(i);
    s.min_cf = 1.1 + 0.2 * i;
    s.report.stats.luts = 150 + 31 * i;
    s.report.stats.ffs = 90 + 7 * i;
    s.report.stats.carry4 = 2 * i;
    s.report.stats.cells = 260 + i;
    s.report.stats.carry_chains = {3 + i};
    s.report.est_slices = 44 + i;
    s.shape.bbox_w = 6;
    s.shape.bbox_h = 8 + i;
    s.shape.min_height = 3 + i;
    s.shape.carry_columns = 1;
    samples.push_back(std::move(s));
  }
  return samples;
}

void fill_sample_cache(ModuleCache& cache) {
  const char* names[] = {"alpha", "beta", "gamma"};
  for (int i = 0; i < 3; ++i) {
    ImplementedBlock b;
    b.name = names[i];
    b.status = i == 1 ? FlowStatus::Degraded : FlowStatus::Ok;
    b.seed_cf = 1.4 + 0.1 * i;
    b.first_run_success = i != 1;
    b.attempts = i + 1;
    b.macro.name = names[i];
    b.macro.cf = 1.2 + 0.05 * i;
    b.macro.fill_ratio = 0.6;
    b.macro.tool_runs = i + 2;
    b.macro.used_slices = 25 + i;
    b.macro.est_slices = 24 + i;
    b.macro.pblock = PBlock{i, i + 4, 0, 7};
    b.macro.footprint.height = 8;
    b.macro.footprint.kinds = {ColumnKind::ClbL, ColumnKind::ClbL,
                               ColumnKind::ClbM};
    cache.restore(std::move(b));
  }
}

ModelBundle sample_bundle() {
  Dataset data;
  data.feature_names = feature_names(FeatureSet::Classical);
  Rng rng(11);
  for (std::size_t i = 0; i < 50; ++i) {
    std::vector<double> row(data.feature_names.size());
    double target = 0.5;
    for (std::size_t j = 0; j < row.size(); ++j) {
      row[j] = j % 2 == 0 ? rng.uniform(0.0, 3000.0) : rng.uniform(0.0, 1.0);
      target += row[j] * (j % 3 == 0 ? 3.0e-4 : 0.04);
    }
    data.add(std::move(row), target, "s" + std::to_string(i));
  }
  CfEstimator::Options options;
  options.dtree.max_depth = 4;
  ModelBundle bundle;
  bundle.name = "m";
  bundle.provenance.seed = 11;
  bundle.provenance.dataset_rows = 50;
  bundle.estimator = CfEstimator(EstimatorKind::DecisionTree,
                                 FeatureSet::Classical, options);
  bundle.estimator.train(data);
  return bundle;
}

// -- ground truth (v3: `# samples N` footer, no checksum) -------------------

TEST(Corruption, GroundTruthZeroLengthFileFailsCleanly) {
  TempDir dir("gt_zero");
  const std::string path = dir.file("gt.txt");
  write_raw(path, "");
  EXPECT_FALSE(load_ground_truth(path).has_value());
}

TEST(Corruption, GroundTruthTruncationNeverYieldsDifferentData) {
  const auto samples = sample_ground_truth();
  const std::string text = ground_truth_to_text(samples);
  TempDir dir("gt_trunc");
  const std::string path = dir.file("gt.txt");
  for (std::size_t len = 0; len < text.size(); ++len) {
    write_raw(path, text.substr(0, len));
    const auto loaded = load_ground_truth(path);
    // Clean failure, or -- when the cut only removed trailing whitespace --
    // an exact parse of the original. Never a third outcome.
    if (loaded.has_value()) {
      EXPECT_EQ(ground_truth_to_text(*loaded), text) << "truncated at " << len;
    }
  }
}

TEST(Corruption, GroundTruthByteFlipsNeverCrash) {
  // The ground-truth format carries a sample-count footer but no per-line
  // checksum, so a flip inside a numeric field can legitimately parse as a
  // different number. The guarantee tested here is the weaker one the
  // format actually makes: every flip either fails cleanly or parses --
  // no crashes, no partial vectors (count footer mismatch -> reject).
  const std::string text = ground_truth_to_text(sample_ground_truth());
  TempDir dir("gt_flip");
  const std::string path = dir.file("gt.txt");
  for (std::size_t pos = 0; pos < text.size(); ++pos) {
    std::string damaged = text;
    damaged[pos] = damaged[pos] == '\x01' ? '\x02' : '\x01';
    write_raw(path, damaged);
    const auto loaded = load_ground_truth(path);
    if (loaded.has_value()) {
      EXPECT_EQ(loaded->size(), sample_ground_truth().size())
          << "flip at " << pos << " produced a partial sample set";
    }
  }
}

TEST(Corruption, GroundTruthSurvivesCrlfRewrite) {
  const auto samples = sample_ground_truth();
  const std::string text = ground_truth_to_text(samples);
  TempDir dir("gt_crlf");
  const std::string path = dir.file("gt.txt");
  write_raw(path, crlf(text));
  const auto loaded = load_ground_truth(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(ground_truth_to_text(*loaded), text);
}

// -- module cache (v1: per-entry FNV-1a checksums + `# entries N` footer) ---

TEST(Corruption, CacheZeroLengthFileFailsCleanly) {
  TempDir dir("cache_zero");
  const std::string path = dir.file("cache.ckpt");
  write_raw(path, "");
  ModuleCache cache;
  const CacheLoadStats stats = load_module_cache(path, cache);
  EXPECT_FALSE(stats.header_ok);
  EXPECT_EQ(stats.loaded, 0);
  EXPECT_TRUE(cache.entries().empty());
}

TEST(Corruption, CacheTruncationNeverYieldsDifferentData) {
  ModuleCache original;
  fill_sample_cache(original);
  const std::string text = module_cache_to_text(original);
  TempDir dir("cache_trunc");
  const std::string path = dir.file("cache.ckpt");
  for (std::size_t len = 0; len < text.size(); ++len) {
    write_raw(path, text.substr(0, len));
    ModuleCache cache;
    const CacheLoadStats stats = load_module_cache(path, cache);
    if (stats.complete && stats.corrupted == 0 && stats.header_ok) {
      EXPECT_EQ(module_cache_to_text(cache), text) << "truncated at " << len;
    } else {
      // Partial loads are allowed (checkpoints resume from what survived)
      // but every surviving entry must be bit-identical to the original.
      for (const auto& [name, block] : cache.entries()) {
        const ImplementedBlock* want = original.find(name);
        ASSERT_NE(want, nullptr) << "truncation invented entry " << name;
        EXPECT_EQ(block.macro.cf, want->macro.cf);
        EXPECT_EQ(block.macro.used_slices, want->macro.used_slices);
      }
    }
  }
}

TEST(Corruption, CacheByteFlipsAreDetectedOrHarmless) {
  ModuleCache original;
  fill_sample_cache(original);
  const std::string text = module_cache_to_text(original);
  TempDir dir("cache_flip");
  const std::string path = dir.file("cache.ckpt");
  for (std::size_t pos = 0; pos < text.size(); ++pos) {
    std::string damaged = text;
    damaged[pos] = damaged[pos] == '\x01' ? '\x02' : '\x01';
    write_raw(path, damaged);
    ModuleCache cache;
    load_module_cache(path, cache);
    // Per-entry checksums: a flipped entry is dropped, never mutated.
    for (const auto& [name, block] : cache.entries()) {
      const ImplementedBlock* want = original.find(name);
      ASSERT_NE(want, nullptr) << "flip at " << pos << " invented " << name;
      EXPECT_EQ(block.macro.cf, want->macro.cf) << "flip at " << pos;
      EXPECT_EQ(block.seed_cf, want->seed_cf) << "flip at " << pos;
    }
  }
}

TEST(Corruption, CacheSingleEntryFlipDropsOnlyThatEntry) {
  ModuleCache original;
  fill_sample_cache(original);
  const std::string text = module_cache_to_text(original);
  // Flip a digit inside the beta entry's payload (its cf field value).
  const std::size_t beta = text.find("\nbeta ");
  ASSERT_NE(beta, std::string::npos);
  const std::size_t digit = text.find_first_of("0123456789", beta + 6);
  ASSERT_NE(digit, std::string::npos);
  std::string damaged = text;
  damaged[digit] = damaged[digit] == '9' ? '8' : '9';

  TempDir dir("cache_one_flip");
  const std::string path = dir.file("cache.ckpt");
  write_raw(path, damaged);
  ModuleCache cache;
  const CacheLoadStats stats = load_module_cache(path, cache);
  EXPECT_TRUE(stats.header_ok);
  EXPECT_TRUE(stats.complete);  // entry count still matches the footer
  EXPECT_EQ(stats.corrupted, 1);
  EXPECT_EQ(stats.loaded, 2);
  EXPECT_EQ(cache.find("beta"), nullptr);
  EXPECT_NE(cache.find("alpha"), nullptr);
  EXPECT_NE(cache.find("gamma"), nullptr);
}

TEST(Corruption, CacheSurvivesCrlfRewrite) {
  ModuleCache original;
  fill_sample_cache(original);
  const std::string text = module_cache_to_text(original);
  TempDir dir("cache_crlf");
  const std::string path = dir.file("cache.ckpt");
  write_raw(path, crlf(text));
  ModuleCache cache;
  const CacheLoadStats stats = load_module_cache(path, cache);
  EXPECT_TRUE(stats.header_ok);
  EXPECT_TRUE(stats.complete);
  EXPECT_EQ(stats.corrupted, 0);
  EXPECT_EQ(module_cache_to_text(cache), text);
}

// -- model bundle (v1: magic + payload line count + checksum footer) --------

TEST(Corruption, BundleZeroLengthFileFailsCleanly) {
  TempDir dir("bundle_zero");
  const std::string path = dir.file("m.mfb");
  write_raw(path, "");
  std::string error;
  EXPECT_FALSE(load_bundle(path, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Corruption, BundleTruncationNeverYieldsDifferentData) {
  const ModelBundle original = sample_bundle();
  const std::string text = bundle_to_text(original);
  TempDir dir("bundle_trunc");
  const std::string path = dir.file("m.mfb");
  for (std::size_t len = 0; len < text.size(); ++len) {
    write_raw(path, text.substr(0, len));
    const auto loaded = load_bundle(path);
    if (loaded.has_value()) {
      EXPECT_EQ(bundle_to_text(*loaded), text) << "truncated at " << len;
    }
  }
}

TEST(Corruption, BundleByteFlipsAreDetectedOrHarmless) {
  const ModelBundle original = sample_bundle();
  const std::string text = bundle_to_text(original);
  TempDir dir("bundle_flip");
  const std::string path = dir.file("m.mfb");
  for (std::size_t pos = 0; pos < text.size(); ++pos) {
    std::string damaged = text;
    damaged[pos] = damaged[pos] == '\x01' ? '\x02' : '\x01';
    write_raw(path, damaged);
    const auto loaded = load_bundle(path);
    // The whole-payload checksum rejects every meaningful flip; the only
    // flips allowed to load must reproduce the original bit for bit.
    if (loaded.has_value()) {
      EXPECT_EQ(bundle_to_text(*loaded), text) << "flip at " << pos;
    }
  }
}

TEST(Corruption, BundleSurvivesCrlfRewrite) {
  const ModelBundle original = sample_bundle();
  const std::string text = bundle_to_text(original);
  TempDir dir("bundle_crlf");
  const std::string path = dir.file("m.mfb");
  write_raw(path, crlf(text));
  const auto loaded = load_bundle(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(bundle_to_text(*loaded), text);
}

// -- binary tier (binfile container) ----------------------------------------
// Stronger invariant than the text formats: every byte of the container is
// covered by a checksum tier, so EVERY truncation and EVERY single-byte
// flip must be rejected wholesale -- no partial loads, no "happens to still
// parse" carve-outs, for all three artifact kinds.

TEST(Corruption, BinaryGroundTruthRejectsEveryTruncationAndFlip) {
  const auto samples = sample_ground_truth();
  const std::string bytes = ground_truth_to_binary(samples);
  TempDir dir("gt_bin");
  const std::string path = dir.file("gt.mfb");
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    write_raw(path, bytes.substr(0, len));
    EXPECT_FALSE(load_ground_truth(path).has_value())
        << "binary truncation at " << len << " loaded";
  }
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string damaged = bytes;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x10);
    write_raw(path, damaged);
    EXPECT_FALSE(load_ground_truth(path).has_value())
        << "binary flip at " << pos << " loaded";
  }
  write_raw(path, bytes);
  const auto loaded = load_ground_truth(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(ground_truth_to_text(*loaded), ground_truth_to_text(samples));
}

TEST(Corruption, BinaryCacheRejectsEveryTruncationAndFlip) {
  ModuleCache original;
  fill_sample_cache(original);
  const std::string bytes = module_cache_to_binary(original);
  TempDir dir("cache_bin");
  const std::string path = dir.file("cache.ckpt");
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    write_raw(path, bytes.substr(0, len));
    ModuleCache cache;
    const CacheLoadStats stats = load_module_cache(path, cache);
    // All-or-nothing: a damaged binary checkpoint loads *nothing* (the flow
    // re-runs from scratch), unlike text where entries survive per-checksum.
    EXPECT_EQ(stats.loaded, 0) << "binary truncation at " << len;
    EXPECT_FALSE(stats.complete) << "binary truncation at " << len;
    EXPECT_TRUE(cache.entries().empty());
  }
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string damaged = bytes;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x10);
    write_raw(path, damaged);
    ModuleCache cache;
    const CacheLoadStats stats = load_module_cache(path, cache);
    EXPECT_EQ(stats.loaded, 0) << "binary flip at " << pos;
    EXPECT_TRUE(cache.entries().empty());
  }
  write_raw(path, bytes);
  ModuleCache cache;
  const CacheLoadStats stats = load_module_cache(path, cache);
  EXPECT_TRUE(stats.complete);
  EXPECT_EQ(stats.corrupted, 0);
  EXPECT_EQ(module_cache_to_text(cache), module_cache_to_text(original));
}

TEST(Corruption, BinaryBundleRejectsEveryTruncationAndFlip) {
  const ModelBundle original = sample_bundle();
  const std::string bytes = bundle_to_binary(original);
  TempDir dir("bundle_bin");
  const std::string path = dir.file("m.mfb");
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    write_raw(path, bytes.substr(0, len));
    EXPECT_FALSE(load_bundle(path).has_value())
        << "binary truncation at " << len << " loaded";
  }
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string damaged = bytes;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x10);
    write_raw(path, damaged);
    std::string error;
    EXPECT_FALSE(load_bundle(path, &error).has_value())
        << "binary flip at " << pos << " loaded";
    EXPECT_FALSE(error.empty());
  }
  write_raw(path, bytes);
  const auto loaded = load_bundle(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(bundle_to_text(*loaded), bundle_to_text(original));
}

}  // namespace
}  // namespace mf
