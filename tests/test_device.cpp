#include "fabric/device.hpp"

#include <gtest/gtest.h>

#include "fabric/catalog.hpp"

namespace mf {
namespace {

TEST(Device, Xc7z020TotalsMatchTargets) {
  const Device dev = xc7z020_model();
  EXPECT_EQ(dev.totals().slices, 89 * 150);
  EXPECT_NEAR(dev.totals().slices, 13300, 100);  // real part: 13,300
  EXPECT_NEAR(dev.totals().bram36, 140, 15);     // real part: 140
  EXPECT_NEAR(dev.totals().dsp, 220, 25);        // real part: 220
  // SLICEM share ~1/3 like the real family.
  EXPECT_NEAR(static_cast<double>(dev.totals().slices_m) / dev.totals().slices,
              1.0 / 3.0, 0.05);
}

TEST(Device, Xc7z045TotalsMatchTargets) {
  const Device dev = xc7z045_model();
  EXPECT_NEAR(dev.totals().slices, 54650, 200);
  EXPECT_NEAR(dev.totals().bram36, 545, 10);
  EXPECT_EQ(dev.totals().dsp, 900);
}

TEST(Device, RowsDivideIntoClockRegions) {
  EXPECT_EQ(xc7z020_model().rows() % xc7z020_model().clock_region_rows(), 0);
  EXPECT_EQ(xc7z045_model().rows() % xc7z045_model().clock_region_rows(), 0);
}

TEST(Device, WholeDeviceResourcesEqualTotals) {
  const Device dev = xc7z020_model();
  const PBlock whole{0, dev.num_columns() - 1, 0, dev.rows() - 1};
  const FabricResources r = dev.resources_in(whole);
  EXPECT_EQ(r.slices, dev.totals().slices);
  EXPECT_EQ(r.slices_m, dev.totals().slices_m);
  EXPECT_EQ(r.bram36, dev.totals().bram36);
  EXPECT_EQ(r.dsp, dev.totals().dsp);
}

TEST(Device, ResourcesScaleWithHeight) {
  const Device dev = xc7z020_model();
  const PBlock half{0, dev.num_columns() - 1, 0, dev.rows() / 2 - 1};
  const FabricResources r = dev.resources_in(half);
  EXPECT_EQ(r.slices, dev.totals().slices / 2);
}

TEST(Device, BramSitesNeedFullPitch) {
  // Site at rows [5,9] requires the whole span inside the range.
  EXPECT_EQ(Device::bram_sites_in_rows(0, 4), 1);   // site [0,4]
  EXPECT_EQ(Device::bram_sites_in_rows(0, 3), 0);   // cut off
  EXPECT_EQ(Device::bram_sites_in_rows(1, 9), 1);   // only [5,9]
  EXPECT_EQ(Device::bram_sites_in_rows(0, 9), 2);
  EXPECT_EQ(Device::bram_sites_in_rows(6, 9), 0);
  EXPECT_EQ(Device::bram_sites_in_rows(5, 4), 0);   // empty range
}

TEST(Device, DspSitesTwicePerPitch) {
  EXPECT_EQ(Device::dsp_sites_in_rows(0, 9), 2 * kDspPerPitch);
}

TEST(Device, InBoundsRejectsOutOfRange) {
  const Device dev = xc7z020_model();
  EXPECT_TRUE(dev.in_bounds(PBlock{0, 0, 0, 0}));
  EXPECT_FALSE(dev.in_bounds(PBlock{-1, 0, 0, 0}));
  EXPECT_FALSE(dev.in_bounds(PBlock{0, dev.num_columns(), 0, 0}));
  EXPECT_FALSE(dev.in_bounds(PBlock{0, 0, 0, dev.rows()}));
  EXPECT_FALSE(dev.in_bounds(PBlock{}));  // empty
}

TEST(Device, KindsInMatchesColumns) {
  const Device dev = xc7z020_model();
  const PBlock pb{3, 7, 0, 0};
  const std::vector<ColumnKind> kinds = dev.kinds_in(pb);
  ASSERT_EQ(kinds.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(kinds[static_cast<std::size_t>(i)], dev.column(3 + i));
  }
}

TEST(PBlockGeometry, WidthHeightAreaOverlap) {
  const PBlock a{0, 3, 0, 4};
  EXPECT_EQ(a.width(), 4);
  EXPECT_EQ(a.height(), 5);
  EXPECT_EQ(a.area(), 20);
  EXPECT_TRUE(a.contains(3, 4));
  EXPECT_FALSE(a.contains(4, 4));
  EXPECT_TRUE(a.overlaps(PBlock{3, 5, 4, 8}));
  EXPECT_FALSE(a.overlaps(PBlock{4, 5, 0, 4}));
  EXPECT_FALSE(a.overlaps(PBlock{0, 3, 5, 8}));
}

TEST(MakeDevice, EmitsRequestedColumnCounts) {
  const Device dev = make_device("t", 30, 3, 4, 2, 50, 50);
  int clb = 0;
  int m = 0;
  int bram = 0;
  int dsp = 0;
  for (ColumnKind kind : dev.columns()) {
    switch (kind) {
      case ColumnKind::ClbL:
        ++clb;
        break;
      case ColumnKind::ClbM:
        ++clb;
        ++m;
        break;
      case ColumnKind::Bram:
        ++bram;
        break;
      case ColumnKind::Dsp:
        ++dsp;
        break;
      case ColumnKind::Clock:
        break;
    }
  }
  EXPECT_EQ(clb, 30);
  EXPECT_EQ(m, 10);
  EXPECT_EQ(bram, 4);
  EXPECT_EQ(dsp, 2);
}

TEST(MakeDevice, SpecialColumnsSpreadOut) {
  const Device dev = make_device("t", 40, 3, 4, 4, 50, 50);
  // No two special (BRAM/DSP) columns adjacent.
  for (int c = 1; c < dev.num_columns(); ++c) {
    const bool special_prev = dev.column(c - 1) == ColumnKind::Bram ||
                              dev.column(c - 1) == ColumnKind::Dsp;
    const bool special_here = dev.column(c) == ColumnKind::Bram ||
                              dev.column(c) == ColumnKind::Dsp;
    EXPECT_FALSE(special_prev && special_here) << "adjacent at " << c;
  }
}

class DeviceParamTest : public ::testing::TestWithParam<int> {};

TEST_P(DeviceParamTest, ResourceCountingConsistentAcrossRects) {
  // Property: resources of a rect equal the sum of a vertical split.
  const Device dev = GetParam() == 0 ? xc7z020_model() : xc7z045_model();
  const int mid_row = dev.rows() / 2;
  const PBlock whole{2, 20, 0, dev.rows() - 1};
  const PBlock top{2, 20, 0, mid_row - 1};
  const PBlock bottom{2, 20, mid_row, dev.rows() - 1};
  const FabricResources w = dev.resources_in(whole);
  const FabricResources t = dev.resources_in(top);
  const FabricResources b = dev.resources_in(bottom);
  EXPECT_EQ(w.slices, t.slices + b.slices);
  EXPECT_EQ(w.slices_m, t.slices_m + b.slices_m);
  // BRAM/DSP sites can only be lost at the cut, never gained.
  EXPECT_GE(w.bram36, t.bram36 + b.bram36);
  EXPECT_GE(w.dsp, t.dsp + b.dsp);
  // The split is on a clock-region boundary multiple of the pitch when
  // mid_row % pitch == 0, in which case nothing is lost.
  if (mid_row % kBramRowPitch == 0) {
    EXPECT_EQ(w.bram36, t.bram36 + b.bram36);
    EXPECT_EQ(w.dsp, t.dsp + b.dsp);
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, DeviceParamTest, ::testing::Values(0, 1));

}  // namespace
}  // namespace mf
