// Tests for the extension features: FIR/FSM generators, gradient boosting,
// and the MinWaste anchor policy.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/pblock_generator.hpp"
#include "fabric/catalog.hpp"
#include "ml/gboost.hpp"
#include "ml/metrics.hpp"
#include "netlist/builder.hpp"
#include "netlist/stats.hpp"
#include "place/quick_placer.hpp"
#include "rtlgen/generators.hpp"
#include "rtlgen/sweep.hpp"
#include "synth/optimize.hpp"

namespace mf {
namespace {

NetlistStats stats_of(Module module) {
  optimize(module.netlist);
  return compute_stats(module.netlist);
}

TEST(FirGen, CarryAndRegisterHeavy) {
  Rng rng(1);
  const NetlistStats s = stats_of(gen_fir({8, 16, false}, rng));
  EXPECT_GT(s.carry4, 8 * 4);       // tap products + adder tree
  EXPECT_GE(s.ffs, 8 * 16);         // delay line
  EXPECT_GT(s.carry_chains.size(), 7u);
}

TEST(FirGen, DspVariantMovesProductsToHardBlocks) {
  Rng rng(2);
  const NetlistStats fabric = stats_of(gen_fir({8, 16, false}, rng));
  Rng rng2(2);
  const NetlistStats dsp = stats_of(gen_fir({8, 16, true}, rng2));
  EXPECT_EQ(fabric.dsp, 0);
  EXPECT_EQ(dsp.dsp, 8);
  EXPECT_LT(dsp.carry4, fabric.carry4);
}

TEST(FsmGen, StateBitsHaveHighFanout) {
  Rng rng(3);
  const NetlistStats s = stats_of(gen_fsm({6, 96, 8}, rng));
  // Each state bit feeds the output decoder and the next-state cloud.
  EXPECT_GE(s.max_fanout, 40);
  EXPECT_EQ(s.carry4, 0);
  EXPECT_GE(s.ffs, 6);
}

TEST(FsmGen, OutputsScaleLutCount) {
  Rng rng(4);
  const NetlistStats small = stats_of(gen_fsm({6, 8, 4}, rng));
  Rng rng2(4);
  const NetlistStats big = stats_of(gen_fsm({6, 96, 4}, rng2));
  EXPECT_GT(big.luts, small.luts + 60);
}

TEST(SweepExtension, FirAndFsmInTheSweep) {
  int fir = 0;
  int fsm = 0;
  for (const GenSpec& spec : dataset_sweep({800, 42})) {
    if (spec.kind == GenKind::Fir) ++fir;
    if (spec.kind == GenKind::Fsm) ++fsm;
  }
  EXPECT_EQ(fir, 24);
  EXPECT_EQ(fsm, 24);
}

TEST(GBoost, FitsNonlinearTarget) {
  Rng rng(5);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 600; ++i) {
    const double a = rng.uniform(0.0, 1.0);
    const double b = rng.uniform(0.0, 1.0);
    x.push_back({a, b});
    y.push_back(a * b + (a > 0.7 ? 0.5 : 0.0));
  }
  GradientBoosting gb;
  GBoostOptions opts;
  opts.rounds = 150;
  gb.fit(x, y, opts);
  EXPECT_LT(mean_squared_error(gb.predict(x), y), 0.003);
}

TEST(GBoost, LossMonotonicallyImproves) {
  Rng rng(6);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    x.push_back({a});
    y.push_back(a * a);
  }
  GradientBoosting gb;
  GBoostOptions opts;
  opts.rounds = 60;
  gb.fit(x, y, opts);
  const auto& loss = gb.training_loss();
  ASSERT_EQ(loss.size(), 60u);
  EXPECT_LT(loss.back(), loss.front() * 0.2);
}

TEST(GBoost, ImportanceNormalised) {
  Rng rng(7);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    const double a = rng.uniform(0.0, 1.0);
    const double b = rng.uniform(0.0, 1.0);
    x.push_back({a, b});
    y.push_back(2.0 * a);  // feature 0 is everything
  }
  GradientBoosting gb;
  gb.fit(x, y, {});
  const auto& imp = gb.feature_importance();
  double total = 0.0;
  for (double v : imp) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Later rounds fit residual noise on the spurious feature, so the share
  // is well below 1.0 -- but the informative feature must clearly dominate.
  EXPECT_GT(imp[0], imp[1]);
  EXPECT_GT(imp[0], 0.55);
}

TEST(AnchorPolicy, MinWasteAvoidsUnneededHardColumns) {
  // A plain-LUT module wide enough that first-fit would straddle a BRAM
  // column; MinWaste should pick a window with fewer unused hard blocks
  // (or at worst the same).
  const Device dev = xc7z020_model();
  Netlist nl;
  NetlistBuilder b(nl);
  const std::vector<NetId> ins = b.input_bus(12, "x");
  for (NetId n : b.lut_layer(ins, 700, 4)) nl.mark_output(n);
  Module m;
  m.netlist = std::move(nl);
  optimize(m.netlist);
  const ResourceReport report = make_report(m.netlist);
  const ShapeReport shape = quick_place(report);

  PBlockGenOptions first;
  PBlockGenOptions waste;
  waste.policy = AnchorPolicy::MinWaste;
  const auto a = generate_pblock(dev, report, shape, 1.3, first);
  const auto w = generate_pblock(dev, report, shape, 1.3, waste);
  ASSERT_TRUE(a && w);
  const FabricResources ra = dev.resources_in(*a);
  const FabricResources rw = dev.resources_in(*w);
  EXPECT_LE(rw.bram36 + rw.dsp, ra.bram36 + ra.dsp);
  EXPECT_GE(rw.slices, report.est_slices);
}

TEST(AnchorPolicy, MinWasteStillCoversNeeds) {
  const Device dev = xc7z020_model();
  Rng rng(8);
  Module m = gen_mixed(
      [] {
        MixedParams p;
        p.luts = 300;
        p.ffs = 250;
        p.bram = 2;
        return p;
      }(),
      rng);
  optimize(m.netlist);
  const ResourceReport report = make_report(m.netlist);
  const ShapeReport shape = quick_place(report);
  PBlockGenOptions waste;
  waste.policy = AnchorPolicy::MinWaste;
  const auto pb = generate_pblock(dev, report, shape, 1.2, waste);
  ASSERT_TRUE(pb.has_value());
  const FabricResources r = dev.resources_in(*pb);
  EXPECT_GE(r.bram36, report.bram36);
  EXPECT_GE(r.slices, static_cast<int>(report.est_slices * 1.2));
}

}  // namespace
}  // namespace mf
