#include "place/detailed_placer.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "fabric/catalog.hpp"
#include "fabric/pblock.hpp"
#include "netlist/builder.hpp"
#include "place/quick_placer.hpp"
#include "rtlgen/generators.hpp"
#include "synth/optimize.hpp"

namespace mf {
namespace {

struct Prepared {
  Module module;
  ResourceReport report;
  ShapeReport shape;
};

Prepared prepare(Module module) {
  optimize(module.netlist);
  Prepared p{std::move(module), {}, {}};
  p.report = make_report(p.module.netlist);
  p.shape = quick_place(p.report);
  return p;
}

Prepared mixed_module(int luts, int ffs, int adders = 1, int cs = 2,
                      std::uint64_t seed = 1) {
  Rng rng(seed);
  MixedParams params;
  params.luts = luts;
  params.ffs = ffs;
  params.carry_adders = adders;
  params.carry_width = 12;
  params.control_sets = cs;
  return prepare(gen_mixed(params, rng));
}

TEST(QuickPlacer, SquareishBox) {
  const Prepared p = mixed_module(400, 300);
  EXPECT_GE(p.shape.bbox_w * p.shape.bbox_h, p.report.est_slices);
  EXPECT_NEAR(p.shape.aspect(), 1.0, 0.5);
}

TEST(QuickPlacer, CarryChainSetsMinHeight) {
  Rng rng(2);
  const Prepared p = prepare(gen_carry({1, 32, false}, rng));
  EXPECT_EQ(p.shape.min_height, p.report.stats.longest_chain());
  EXPECT_GE(p.shape.bbox_h, p.shape.min_height);
}

TEST(QuickPlacer, BramStretchesHeight) {
  Netlist nl;
  NetlistBuilder b(nl);
  const std::vector<NetId> addr = b.input_bus(10, "a");
  for (int i = 0; i < 12; ++i) b.bram36(addr, addr);
  Module m;
  m.netlist = std::move(nl);
  const Prepared p = prepare(std::move(m));
  EXPECT_GE(p.shape.bbox_h, 12 * kBramRowPitch);
}

TEST(DetailedPlacer, FeasibleInGenerousPBlock) {
  const Device dev = xc7z020_model();
  const Prepared p = mixed_module(300, 250);
  const PBlock pb{0, 30, 0, 40};
  const PlaceResult r =
      place_in_pblock(p.module, p.report, dev, pb, {});
  EXPECT_TRUE(r.feasible) << r.fail_reason;
  EXPECT_GT(r.used_slices, 0);
}

TEST(DetailedPlacer, AllCellsPlacedInsidePBlock) {
  const Device dev = xc7z020_model();
  const Prepared p = mixed_module(300, 250, 2, 4);
  const PBlock pb{0, 30, 0, 40};
  const PlaceResult r = place_in_pblock(p.module, p.report, dev, pb, {});
  ASSERT_TRUE(r.feasible);
  for (std::size_t i = 0; i < r.placement.size(); ++i) {
    const CellPlacement& cp = r.placement[i];
    ASSERT_TRUE(cp.placed()) << "cell " << i << " unplaced";
    ASSERT_TRUE(pb.contains(cp.col, cp.row));
  }
}

TEST(DetailedPlacer, SliceCapacitiesRespected) {
  const Device dev = xc7z020_model();
  const Prepared p = mixed_module(500, 600, 2, 6);
  const PBlock pb{0, 25, 0, 30};
  const PlaceResult r = place_in_pblock(p.module, p.report, dev, pb, {});
  ASSERT_TRUE(r.feasible) << r.fail_reason;

  std::map<std::pair<int, int>, int> lut_sites;
  std::map<std::pair<int, int>, int> ffs;
  std::map<std::pair<int, int>, std::set<ControlSetId>> slice_cs;
  const Netlist& nl = p.module.netlist;
  for (std::size_t i = 0; i < nl.num_cells(); ++i) {
    const Cell& cell = nl.cell(static_cast<CellId>(i));
    const CellPlacement& cp = r.placement[i];
    const auto key = std::make_pair<int, int>(cp.col, cp.row);
    switch (cell.kind) {
      case CellKind::Lut:
      case CellKind::Srl:
      case CellKind::LutRam:
        ++lut_sites[key];
        break;
      case CellKind::Ff:
        ++ffs[key];
        slice_cs[key].insert(cell.control_set);
        break;
      default:
        break;
    }
  }
  for (const auto& [pos, count] : lut_sites) {
    EXPECT_LE(count, kLutsPerSlice) << "LUT overflow at " << pos.first;
  }
  for (const auto& [pos, count] : ffs) {
    EXPECT_LE(count, kFfsPerSlice) << "FF overflow";
  }
  for (const auto& [pos, sets] : slice_cs) {
    EXPECT_LE(sets.size(), 2u) << "more than two control sets in a slice";
  }
}

TEST(DetailedPlacer, CarryChainsVerticallyContiguous) {
  const Device dev = xc7z020_model();
  Rng rng(5);
  const Prepared p = prepare(gen_carry({2, 24, true}, rng));
  const PBlock pb{0, 20, 0, 30};
  const PlaceResult r = place_in_pblock(p.module, p.report, dev, pb, {});
  ASSERT_TRUE(r.feasible) << r.fail_reason;

  std::map<int, std::vector<std::pair<int, int>>> chains;  // chain -> (pos, row/col)
  const Netlist& nl = p.module.netlist;
  for (std::size_t i = 0; i < nl.num_cells(); ++i) {
    const Cell& cell = nl.cell(static_cast<CellId>(i));
    if (cell.kind != CellKind::Carry4) continue;
    chains[cell.chain].push_back(
        {cell.chain_pos,
         r.placement[i].col * 1000 + r.placement[i].row});
  }
  for (auto& [chain, cells] : chains) {
    std::sort(cells.begin(), cells.end());
    // Contiguous vertical run in a single column; direction depends on the
    // snake orientation of the column, but must be consistent.
    int direction = 0;
    for (std::size_t k = 1; k < cells.size(); ++k) {
      const int prev_col = cells[k - 1].second / 1000;
      const int prev_row = cells[k - 1].second % 1000;
      const int col = cells[k].second / 1000;
      const int row = cells[k].second % 1000;
      EXPECT_EQ(col, prev_col) << "chain " << chain << " switches column";
      const int step = row - prev_row;
      EXPECT_EQ(std::abs(step), 1) << "chain " << chain << " not contiguous";
      if (direction == 0) direction = step;
      EXPECT_EQ(step, direction) << "chain " << chain << " changes direction";
    }
  }
}

TEST(DetailedPlacer, MemCellsLandInMColumns) {
  const Device dev = xc7z020_model();
  Rng rng(6);
  const Prepared p = prepare(gen_lutram({8, 256}, rng));
  const PBlock pb{0, 30, 0, 30};
  const PlaceResult r = place_in_pblock(p.module, p.report, dev, pb, {});
  ASSERT_TRUE(r.feasible) << r.fail_reason;
  const Netlist& nl = p.module.netlist;
  for (std::size_t i = 0; i < nl.num_cells(); ++i) {
    const Cell& cell = nl.cell(static_cast<CellId>(i));
    if (cell.kind == CellKind::LutRam || cell.kind == CellKind::Srl) {
      EXPECT_EQ(dev.column(r.placement[i].col), ColumnKind::ClbM);
    }
  }
}

TEST(DetailedPlacer, FailsWhenSlicesShort) {
  const Device dev = xc7z020_model();
  const Prepared p = mixed_module(800, 100);
  const PBlock pb{0, 5, 0, 5};  // ~30 slices for ~200 needed
  const PlaceResult r = place_in_pblock(p.module, p.report, dev, pb, {});
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.fail_reason, "lut capacity");
}

TEST(DetailedPlacer, FailsWhenCarryTooTall) {
  const Device dev = xc7z020_model();
  Rng rng(7);
  const Prepared p = prepare(gen_carry({1, 64, false}, rng));  // 16-high chain
  const PBlock pb{0, 30, 0, 7};  // height 8 < 16
  const PlaceResult r = place_in_pblock(p.module, p.report, dev, pb, {});
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.fail_reason, "carry chain does not fit");
}

TEST(DetailedPlacer, FailsWithoutMSlices) {
  // A PBlock over pure-L columns cannot host LUTRAM.
  const Device dev = xc7z020_model();
  Rng rng(8);
  const Prepared p = prepare(gen_lutram({4, 64}, rng));
  // Columns 0..1 are L-typed in the model (period 3 puts M at index 2).
  const PBlock pb{0, 1, 0, 40};
  ASSERT_TRUE(m_columns_in(dev, pb).empty());
  const PlaceResult r = place_in_pblock(p.module, p.report, dev, pb, {});
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.fail_reason, "m-slice capacity");
}

TEST(DetailedPlacer, BramCapacityEnforced) {
  const Device dev = xc7z020_model();
  Netlist nl;
  NetlistBuilder b(nl);
  const std::vector<NetId> addr = b.input_bus(10, "a");
  for (int i = 0; i < 4; ++i) b.bram36(addr, addr);
  Module m;
  m.netlist = std::move(nl);
  const Prepared p = prepare(std::move(m));
  // Narrow CLB-only window: no BRAM columns at all.
  const PBlock pb{0, 1, 0, 40};
  const PlaceResult r = place_in_pblock(p.module, p.report, dev, pb, {});
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.fail_reason, "bram capacity");
}

TEST(DetailedPlacer, UsedSlicesGrowWithPBlockSize) {
  // The spreading rule: more area -> more (sparser) used slices. This is
  // the mechanism behind Table I's used-slice growth at looser CFs.
  const Device dev = xc7z020_model();
  const Prepared p = mixed_module(600, 500, 2, 4);
  const PlaceResult tight =
      place_in_pblock(p.module, p.report, dev, PBlock{0, 17, 0, 15}, {});
  const PlaceResult loose =
      place_in_pblock(p.module, p.report, dev, PBlock{0, 24, 0, 23}, {});
  ASSERT_TRUE(tight.feasible) << tight.fail_reason;
  ASSERT_TRUE(loose.feasible);
  EXPECT_GT(loose.used_slices, tight.used_slices);
}

TEST(DetailedPlacer, CongestionRelaxesWithArea) {
  const Device dev = xc7z020_model();
  const Prepared p = mixed_module(600, 500, 2, 4);
  const PlaceResult tight =
      place_in_pblock(p.module, p.report, dev, PBlock{0, 17, 0, 15}, {});
  const PlaceResult loose =
      place_in_pblock(p.module, p.report, dev, PBlock{0, 29, 0, 27}, {});
  ASSERT_TRUE(tight.feasible) << tight.fail_reason;
  ASSERT_TRUE(loose.feasible);
  EXPECT_LT(loose.route.peak, tight.route.peak);
}

TEST(DetailedPlacer, DeterministicResult) {
  const Device dev = xc7z020_model();
  const Prepared p = mixed_module(300, 250);
  const PBlock pb{0, 30, 0, 40};
  const PlaceResult a = place_in_pblock(p.module, p.report, dev, pb, {});
  const PlaceResult b = place_in_pblock(p.module, p.report, dev, pb, {});
  ASSERT_EQ(a.placement.size(), b.placement.size());
  for (std::size_t i = 0; i < a.placement.size(); ++i) {
    ASSERT_EQ(a.placement[i].col, b.placement[i].col);
    ASSERT_EQ(a.placement[i].row, b.placement[i].row);
  }
}

}  // namespace
}  // namespace mf
