// Serving-daemon subsystem tests (src/srv): wire protocol, EINTR-safe fd
// I/O, log2 histograms, token-bucket quotas, the canary state machine, the
// batch coalescer's bit-identity and flush triggers, version-pinned service
// prediction, and full protocol integration over a socketpair -- including
// the hot-reload-under-traffic and canary rollback/promotion paths.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>

#include "common/histogram.hpp"
#include "common/io_util.hpp"
#include "common/parse_num.hpp"
#include "common/rng.hpp"
#include "serve/registry.hpp"
#include "srv/canary.hpp"
#include "srv/client.hpp"
#include "srv/coalescer.hpp"
#include "srv/net_chaos.hpp"
#include "srv/protocol.hpp"
#include "srv/quota.hpp"
#include "srv/server.hpp"
#include "srv/supervised.hpp"

namespace mf {
namespace {

namespace fs = std::filesystem;

// -- fixtures ---------------------------------------------------------------
// Protocol and routing behaviour is independent of estimator quality, so
// everything trains tiny linear models on synthetic data (fast, and two
// different training seeds give two versions with *different* predictions,
// which is what the reload/canary tests need to tell versions apart).

Dataset srv_dataset(std::size_t n, std::uint64_t seed) {
  Dataset data;
  data.feature_names = feature_names(FeatureSet::Classical);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row(data.feature_names.size());
    double target = 0.4;
    for (std::size_t j = 0; j < row.size(); ++j) {
      row[j] = j % 2 == 0 ? rng.uniform(0.0, 4000.0) : rng.uniform(0.0, 1.0);
      target += row[j] * (j % 3 == 0 ? 2.5e-4 : 0.05);
    }
    target += rng.uniform(0.0, 0.2);
    data.add(std::move(row), target, "s" + std::to_string(i));
  }
  return data;
}

ModelBundle srv_bundle(const std::string& name, std::uint64_t data_seed) {
  ModelBundle bundle;
  bundle.name = name;
  bundle.provenance.seed = 3;
  bundle.provenance.dataset_seed = data_seed;
  bundle.provenance.dataset_rows = 60;
  bundle.estimator = CfEstimator(EstimatorKind::LinearRegression,
                                 FeatureSet::Classical);
  bundle.estimator.train(srv_dataset(60, data_seed));
  return bundle;
}

std::vector<double> srv_row(std::uint64_t seed) {
  return srv_dataset(1, seed).x[0];
}

std::string estimate_line(const std::string& client, const std::string& model,
                          const std::vector<double>& row) {
  std::string line = "ESTIMATE " + client + " " + model;
  for (const double v : row) line += " " + format_double(v);
  line += "\n";
  return line;
}

/// Scratch registry directory wiped per test.
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_((fs::temp_directory_path() /
               ("mf_srv_" + tag + "_" + std::to_string(::getpid())))
                  .string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

ServerOptions fast_server_options(const std::string& registry_dir) {
  ServerOptions options;
  options.registry_dir = registry_dir;
  options.stdio = true;  // satisfies validation; tests drive serve_stream
  options.coalesce.coalesce_us = 200.0;
  options.coalesce.max_batch = 32;
  options.coalesce.queue_capacity = 128;
  return options;
}

/// One live protocol connection into `server` over a socketpair, with the
/// serving side running on its own thread (exactly the daemon's per-
/// connection shape).
class Conn {
 public:
  explicit Conn(EstimatorServer& server) {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    client_fd_ = fds[0];
    server_fd_ = fds[1];
    thread_ = std::thread([&server, fd = server_fd_] {
      server.serve_stream(fd, fd);
    });
  }
  ~Conn() { finish(); }

  void send(const std::string& bytes) {
    ASSERT_TRUE(write_all(client_fd_, bytes));
  }

  /// Next response line ("" after EOF).
  std::string read_line() {
    for (;;) {
      if (std::optional<std::string> line = pop_line(buffer_)) return *line;
      const std::optional<std::size_t> n = read_some(client_fd_, buffer_);
      if (!n || *n == 0) return "";
    }
  }

  std::string transact(const std::string& request_line) {
    send(request_line);
    return read_line();
  }

  /// Half-close the request direction, join the server side, return any
  /// remaining response lines.
  void finish() {
    if (client_fd_ < 0) return;
    ::shutdown(client_fd_, SHUT_WR);
    thread_.join();
    ::close(server_fd_);
    ::close(client_fd_);
    client_fd_ = -1;
  }

 private:
  int client_fd_ = -1;
  int server_fd_ = -1;
  std::string buffer_;
  std::thread thread_;
};

// -- protocol ---------------------------------------------------------------

TEST(SrvProtocol, ParsesEstimate) {
  std::string error;
  const std::optional<Request> request =
      parse_request("ESTIMATE tenant_a model-1 1 2.5 -3e-2", &error);
  ASSERT_TRUE(request) << error;
  EXPECT_EQ(request->verb, ReqVerb::Estimate);
  EXPECT_EQ(request->client, "tenant_a");
  EXPECT_EQ(request->model, "model-1");
  ASSERT_EQ(request->features.size(), 3u);
  EXPECT_EQ(request->features[0], 1.0);
  EXPECT_EQ(request->features[1], 2.5);
  EXPECT_EQ(request->features[2], -3e-2);
}

TEST(SrvProtocol, TokenizesOnRunsAndTolerigesCr) {
  std::string error;
  const std::optional<Request> request =
      parse_request("  ESTIMATE \t c  m \t 1   2 ", &error);
  ASSERT_TRUE(request) << error;
  EXPECT_EQ(request->features.size(), 2u);
  EXPECT_TRUE(parse_request("PING", &error));
  EXPECT_TRUE(parse_request("STATS", &error));
  EXPECT_TRUE(parse_request("INFO m", &error));
}

TEST(SrvProtocol, RejectsMalformedRequests) {
  std::string error;
  EXPECT_FALSE(parse_request("", &error));
  EXPECT_FALSE(parse_request("FROB x", &error));
  EXPECT_FALSE(parse_request("ESTIMATE c", &error));          // no model
  EXPECT_FALSE(parse_request("ESTIMATE c m", &error));        // no features
  EXPECT_FALSE(parse_request("ESTIMATE c m 1x", &error));     // bad float
  EXPECT_FALSE(parse_request("ESTIMATE c m nan", &error));    // non-finite
  EXPECT_FALSE(parse_request("ESTIMATE c m inf", &error));
  EXPECT_FALSE(parse_request("PING extra", &error));
  EXPECT_FALSE(parse_request("INFO", &error));
  std::string flood = "ESTIMATE c m";
  for (std::size_t i = 0; i <= kMaxFeatures; ++i) flood += " 1";
  EXPECT_FALSE(parse_request(flood, &error));
  EXPECT_NE(error.find("features"), std::string::npos);
  const std::string long_name(200, 'a');
  EXPECT_FALSE(parse_request("ESTIMATE " + long_name + " m 1", &error));
}

TEST(SrvProtocol, PopLineSplitsBufferedStream) {
  std::string buffer = "PING\r\nSTATS\nIN";
  std::optional<std::string> line = pop_line(buffer);
  ASSERT_TRUE(line);
  EXPECT_EQ(*line, "PING");
  line = pop_line(buffer);
  ASSERT_TRUE(line);
  EXPECT_EQ(*line, "STATS");
  EXPECT_FALSE(pop_line(buffer));  // incomplete tail stays buffered
  EXPECT_EQ(buffer, "IN");
  buffer += "FO m\n";
  line = pop_line(buffer);
  ASSERT_TRUE(line);
  EXPECT_EQ(*line, "INFO m");
  EXPECT_TRUE(buffer.empty());
}

TEST(SrvProtocol, PopLineHandlesCrTerminators) {
  // Bare-CR framing (old Mac / sloppy clients) terminates a line too.
  std::string buffer = "PING\rSTATS\r\nINFO m\r";
  std::optional<std::string> line = pop_line(buffer);
  ASSERT_TRUE(line);
  EXPECT_EQ(*line, "PING");
  line = pop_line(buffer);
  ASSERT_TRUE(line);
  EXPECT_EQ(*line, "STATS");
  // A CR as the final buffered byte could be the first half of a CRLF
  // split across reads: it must stay buffered until the next byte decides.
  EXPECT_FALSE(pop_line(buffer));
  EXPECT_EQ(buffer, "INFO m\r");
  buffer += "\nPING\n";
  line = pop_line(buffer);
  ASSERT_TRUE(line);
  EXPECT_EQ(*line, "INFO m");  // the late LF completed one CRLF, not two
  line = pop_line(buffer);
  ASSERT_TRUE(line);
  EXPECT_EQ(*line, "PING");
  EXPECT_TRUE(buffer.empty());
}

TEST(SrvProtocol, ByteAtATimeDeliveryIsLossless) {
  // Fuzz-ish framing check: a stream of random non-empty lines with mixed
  // terminators parses to the same lines whether it arrives in one read or
  // one byte at a time (chunking can split any terminator anywhere).
  Rng rng(0xF00D);
  const char* terminators[] = {"\n", "\r\n", "\r"};
  std::string stream;
  std::vector<std::string> want;
  for (int i = 0; i < 400; ++i) {
    std::string text;
    const int len = 1 + static_cast<int>(rng.uniform(0.0, 12.0));
    for (int j = 0; j < len; ++j) {
      text.push_back(static_cast<char>('a' + rng.uniform_int(0, 25)));
    }
    want.push_back(text);
    stream += text;
    stream += i + 1 == 400 ? "\n" : terminators[rng.uniform_int(0, 2)];
  }
  std::string bulk = stream;
  std::vector<std::string> bulk_lines;
  while (std::optional<std::string> line = pop_line(bulk)) {
    bulk_lines.push_back(*line);
  }
  EXPECT_EQ(bulk_lines, want);
  EXPECT_TRUE(bulk.empty());

  std::string buffer;
  std::vector<std::string> got;
  for (const char byte : stream) {
    buffer.push_back(byte);
    while (std::optional<std::string> line = pop_line(buffer)) {
      got.push_back(*line);
    }
  }
  EXPECT_EQ(got, want);
  EXPECT_TRUE(buffer.empty());
}

TEST(SrvProtocol, TraceIdRoundTrip) {
  std::string error;
  std::string trace;
  const std::optional<Request> request =
      parse_request("id=cli:7 ESTIMATE c m 1 2", &error, &trace);
  ASSERT_TRUE(request) << error;
  EXPECT_EQ(request->verb, ReqVerb::Estimate);
  EXPECT_EQ(request->trace, "cli:7");
  EXPECT_EQ(trace, "cli:7");
  EXPECT_EQ(format_ok("pong", "cli:7"), "OK pong id=cli:7\n");
  EXPECT_EQ(format_err(404, "nope", "cli:7"), "ERR 404 nope id=cli:7\n");
  EXPECT_EQ(response_trace("OK pong id=cli:7\n"), "cli:7");
  EXPECT_EQ(response_trace("OK pong"), "");
  EXPECT_EQ(response_code("OK pong id=cli:7"), 0);
  EXPECT_EQ(response_code("ERR 429 over quota id=cli:7"), 429);
  // The CF bit-identity contract holds with the id echo attached.
  const std::string line = format_ok_cf(1.0 / 3.0, "cli:9");
  const std::optional<double> back = parse_ok_cf(line);
  ASSERT_TRUE(back) << line;
  EXPECT_EQ(*back, 1.0 / 3.0);
  EXPECT_EQ(response_trace(line), "cli:9");
  // TRACE lookups parse to the queried id.
  const std::optional<Request> lookup = parse_request("TRACE cli:7", &error);
  ASSERT_TRUE(lookup) << error;
  EXPECT_EQ(lookup->verb, ReqVerb::Trace);
  EXPECT_EQ(lookup->query, "cli:7");
}

TEST(SrvProtocol, RejectsBadTraceIdsAndKeepsQuietPathBytes) {
  std::string error;
  EXPECT_FALSE(parse_request("id= PING", &error));    // empty id
  EXPECT_FALSE(parse_request("id=cli:1", &error));    // id with no verb
  EXPECT_FALSE(parse_request("TRACE", &error));       // lookup needs an id
  EXPECT_FALSE(parse_request("TRACE a b", &error));   // exactly one id
  const std::string oversize(kMaxTraceBytes + 1, 'x');
  EXPECT_FALSE(parse_request("id=" + oversize + " PING", &error));
  // Untraced responses carry not a byte more than before tracing existed.
  EXPECT_EQ(format_ok("pong"), "OK pong\n");
  EXPECT_EQ(format_err(429, "over quota"), "ERR 429 over quota\n");
  EXPECT_EQ(format_ok_cf(1.375), "OK 1.375\n");
}

TEST(SrvProtocol, CfFormatRoundTripsBitwise) {
  // The client-side half of the bit-identity contract: `OK <cf>` reparses
  // to the exact double for awkward values (shortest round-trip format).
  for (const double cf : {0.1, 1.0 / 3.0, 1.375, 6.25e-7, 12345.678901234567}) {
    const std::string line = format_ok_cf(cf);
    const std::optional<double> back = parse_ok_cf(line);
    ASSERT_TRUE(back) << line;
    EXPECT_EQ(*back, cf) << line;
  }
  EXPECT_FALSE(parse_ok_cf("ERR 400 nope\n"));
  EXPECT_FALSE(parse_ok_cf("OK pong\n"));
  EXPECT_EQ(format_err(429, "over quota"), "ERR 429 over quota\n");
}

// -- histogram --------------------------------------------------------------

TEST(SrvHistogram, BucketsByBitWidthAndAnswersQuantiles) {
  Log2Histogram h;
  EXPECT_EQ(h.quantile_max(0.5), 0u);  // empty
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.total, 1000u);
  // The median observation (500) lives in bucket bit_width(500)=9, whose
  // upper bound is 511.
  EXPECT_EQ(h.quantile_max(0.5), 511u);
  EXPECT_EQ(h.quantile_max(1.0), 1023u);
  EXPECT_LE(h.quantile_max(0.01), 15u);
}

TEST(SrvHistogram, MergesAndSaturates) {
  Log2Histogram a;
  Log2Histogram b;
  a.record(0);
  a.record(7);
  b.record(~std::uint64_t{0});  // saturates into the last bucket
  a += b;
  EXPECT_EQ(a.total, 3u);
  EXPECT_EQ(a.counts[Log2Histogram::kBuckets - 1], 1u);
  // The open-ended last bucket reports its lower edge, not 2^47-1.
  EXPECT_EQ(a.quantile_max(1.0),
            std::uint64_t{1} << (Log2Histogram::kBuckets - 2));
  EXPECT_EQ(a.counts[0], 1u);  // zero has bit_width 0
}

// -- fd I/O helpers ---------------------------------------------------------

TEST(SrvIoUtil, WriteAllAndReadAllMoveLargePayloads) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::string payload;
  payload.reserve(300000);
  Rng rng(11);
  for (int i = 0; i < 300000; ++i) {
    payload.push_back(static_cast<char>('a' + rng.uniform_int(0, 25)));
  }
  // Writer on a thread: the payload exceeds the pipe buffer, so write_all
  // must survive short writes while the reader drains.
  std::thread writer([fd = fds[1], &payload] {
    EXPECT_TRUE(write_all(fd, payload));
    ::close(fd);
  });
  const std::optional<std::string> got = read_all(fds[0]);
  writer.join();
  ::close(fds[0]);
  ASSERT_TRUE(got);
  EXPECT_EQ(*got, payload);
}

TEST(SrvIoUtil, SigpipeIgnoreIsIdempotentAndTurnsEpipeIntoFalse) {
  ASSERT_TRUE(ignore_sigpipe());
  ASSERT_TRUE(ignore_sigpipe());  // second call is a no-op
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[0]);
  // Without the ignore this write would raise SIGPIPE and kill the test.
  EXPECT_FALSE(write_all(fds[1], "peer is gone"));
  ::close(fds[1]);
}

TEST(SrvIoUtil, WaitReadableTimesOutAndWakes) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  EXPECT_FALSE(wait_readable(fds[0], 10));  // nothing buffered
  ASSERT_TRUE(write_all(fds[1], "x"));
  EXPECT_TRUE(wait_readable(fds[0], 1000));
  std::string out;
  EXPECT_EQ(read_some(fds[0], out), 1u);
  EXPECT_EQ(out, "x");
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(SrvIoUtil, WriteAllReportsEpipeAfterPeerClose) {
  ASSERT_TRUE(ignore_sigpipe());
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[0]);
  // The payload dwarfs the socket buffer, so even if an early chunk lands
  // there the loop must surface EPIPE as false -- never spin or raise.
  const std::string payload(1 << 20, 'x');
  EXPECT_FALSE(write_all(fds[1], payload));
  ::close(fds[1]);
}

TEST(SrvIoUtil, TimeoutRoundingAtSubMillisecondBudgets) {
  // Deadline arithmetic can leave a remaining budget under one
  // millisecond; poll() takes whole ms, and rounding *down* would turn the
  // tail of every deadline into a 0 ms busy-poll loop. Round up, saturate.
  EXPECT_EQ(timeout_ms_from_seconds(0.0), 0);
  EXPECT_EQ(timeout_ms_from_seconds(-1.0), 0);
  EXPECT_EQ(timeout_ms_from_seconds(1e-9), 1);
  EXPECT_EQ(timeout_ms_from_seconds(0.0004), 1);
  EXPECT_EQ(timeout_ms_from_seconds(0.001), 1);
  EXPECT_EQ(timeout_ms_from_seconds(0.0011), 2);
  EXPECT_EQ(timeout_ms_from_seconds(2.0), 2000);
  EXPECT_EQ(timeout_ms_from_seconds(1e9), 2147483647);
  // Behavioural check: a sub-ms wait still blocks (and times out) rather
  // than degenerating into poll(0).
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  EXPECT_FALSE(wait_readable(fds[0], timeout_ms_from_seconds(2e-4)));
  ::close(fds[0]);
  ::close(fds[1]);
}

// -- quotas -----------------------------------------------------------------

constexpr std::uint64_t kSecond = 1000000000ull;

TEST(SrvQuota, DisabledAdmitsEverything) {
  ClientQuota quota(QuotaOptions{});  // rate <= 0: admission control off
  EXPECT_FALSE(quota.enabled());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(quota.try_acquire("c", 0));
  EXPECT_EQ(quota.shed_total(), 0u);
}

TEST(SrvQuota, BurstThenRefill) {
  ClientQuota quota(QuotaOptions{2.0, 3.0, 16});
  // A fresh client starts with a full burst of 3...
  EXPECT_TRUE(quota.try_acquire("c", 0));
  EXPECT_TRUE(quota.try_acquire("c", 0));
  EXPECT_TRUE(quota.try_acquire("c", 0));
  EXPECT_FALSE(quota.try_acquire("c", 0));
  // ...and refills at 2 tokens/s: after half a second exactly one token.
  EXPECT_TRUE(quota.try_acquire("c", kSecond / 2));
  EXPECT_FALSE(quota.try_acquire("c", kSecond / 2));
  // A long idle period caps at burst, not rate * elapsed.
  EXPECT_TRUE(quota.try_acquire("c", 100 * kSecond));
  EXPECT_TRUE(quota.try_acquire("c", 100 * kSecond));
  EXPECT_TRUE(quota.try_acquire("c", 100 * kSecond));
  EXPECT_FALSE(quota.try_acquire("c", 100 * kSecond));
  EXPECT_EQ(quota.admitted_total(), 7u);
  EXPECT_EQ(quota.shed_total(), 3u);
}

TEST(SrvQuota, ClientsAreIndependentAndClockRegressionIsSafe) {
  ClientQuota quota(QuotaOptions{1.0, 1.0, 16});
  EXPECT_TRUE(quota.try_acquire("a", 5 * kSecond));
  EXPECT_TRUE(quota.try_acquire("b", 5 * kSecond));  // b has its own bucket
  EXPECT_FALSE(quota.try_acquire("a", 5 * kSecond));
  // An earlier timestamp (reordered threads) must not mint tokens.
  EXPECT_FALSE(quota.try_acquire("a", 4 * kSecond));
  EXPECT_TRUE(quota.try_acquire("a", 6 * kSecond + kSecond));
}

TEST(SrvQuota, RecyclesStalestBucketAtCapacity) {
  ClientQuota quota(QuotaOptions{1.0, 1.0, 2});
  EXPECT_TRUE(quota.try_acquire("old", 0));
  EXPECT_TRUE(quota.try_acquire("new", 10 * kSecond));
  EXPECT_EQ(quota.tracked_clients(), 2u);
  // A third client evicts the stalest bucket ("old"), not a fresh one.
  EXPECT_TRUE(quota.try_acquire("third", 10 * kSecond));
  EXPECT_EQ(quota.tracked_clients(), 2u);
  // "new" kept its (empty) bucket: still shed at the same timestamp.
  EXPECT_FALSE(quota.try_acquire("new", 10 * kSecond));
}

// -- canary state machine ---------------------------------------------------

TEST(SrvCanary, FirstCleanLoadBecomesStable) {
  CanaryController ctl(CanaryOptions{50, 3, 5});
  EXPECT_EQ(ctl.version_to_load(3), 3);  // nothing stable: anything goes
  ctl.on_load_ok(3);
  EXPECT_EQ(ctl.status().stable_version, 3);
  EXPECT_EQ(ctl.status().canary_version, 0);
  EXPECT_EQ(ctl.version_to_load(3), 0);
  EXPECT_EQ(ctl.version_to_load(2), 0);  // older files are history
}

TEST(SrvCanary, PercentZeroHotSwapsDirectly) {
  CanaryController ctl(CanaryOptions{0, 3, 5});
  ctl.on_load_ok(1);
  ctl.on_load_ok(2);
  EXPECT_EQ(ctl.status().stable_version, 2);
  EXPECT_EQ(ctl.status().canary_version, 0);
  EXPECT_EQ(ctl.status().canaries_started, 0u);
}

TEST(SrvCanary, PromotesAfterConsecutiveSuccesses) {
  CanaryController ctl(CanaryOptions{100, 3, 4});
  ctl.on_load_ok(1);
  ctl.on_load_ok(2);
  EXPECT_EQ(ctl.status().canary_version, 2);
  EXPECT_EQ(ctl.status().canaries_started, 1u);
  ctl.on_canary_result(true);
  ctl.on_canary_result(true);
  ctl.on_canary_result(false);  // a failure resets the success streak
  ctl.on_canary_result(true);
  ctl.on_canary_result(true);
  ctl.on_canary_result(true);
  EXPECT_EQ(ctl.status().canary_version, 2);  // 3 < promote_after
  ctl.on_canary_result(true);
  EXPECT_EQ(ctl.status().stable_version, 2);
  EXPECT_EQ(ctl.status().canary_version, 0);
  EXPECT_EQ(ctl.status().promotions, 1u);
}

TEST(SrvCanary, RollsBackOnServeFailuresAndNeverRetries) {
  CanaryController ctl(CanaryOptions{100, 2, 100});
  ctl.on_load_ok(1);
  ctl.on_load_ok(2);
  ctl.on_canary_result(false);
  EXPECT_EQ(ctl.status().canary_version, 2);  // 1 < fail_threshold
  ctl.on_canary_result(false);
  EXPECT_EQ(ctl.status().canary_version, 0);
  EXPECT_EQ(ctl.status().stable_version, 1);
  EXPECT_EQ(ctl.status().rollbacks, 1u);
  EXPECT_TRUE(ctl.is_bad(2));
  EXPECT_EQ(ctl.version_to_load(2), 0);  // condemned forever
  EXPECT_EQ(ctl.version_to_load(3), 3);  // a newer candidate still welcome
  ctl.on_load_ok(2);                     // stale load result: ignored
  EXPECT_EQ(ctl.status().canary_version, 0);
}

TEST(SrvCanary, LoadFailuresTripTheSameBreaker) {
  CanaryController ctl(CanaryOptions{100, 3, 100});
  ctl.on_load_ok(1);
  ctl.on_load_failed(2);
  ctl.on_load_failed(2);
  EXPECT_FALSE(ctl.is_bad(2));
  ctl.on_load_failed(2);
  EXPECT_TRUE(ctl.is_bad(2));
  EXPECT_EQ(ctl.status().rollbacks, 1u);
  EXPECT_EQ(ctl.status().stable_version, 1);
  // A load success in between resets the count (flaky disk, not poison).
  ctl.on_load_failed(3);
  ctl.on_load_ok(3);
  EXPECT_EQ(ctl.status().canary_version, 3);
}

TEST(SrvCanary, ClientHashSplitsDeterministically) {
  CanaryController ctl(CanaryOptions{30, 3, 100});
  ctl.on_load_ok(1);
  ctl.on_load_ok(2);
  int canaried = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string client = "tenant-" + std::to_string(i);
    const bool first = ctl.use_canary(client);
    EXPECT_EQ(first, ctl.use_canary(client));  // stable per tenant
    EXPECT_EQ(first, CanaryController::client_hash(client) % 100 < 30);
    canaried += first ? 1 : 0;
  }
  // Roughly 30% of tenants (hash mixing, not a statistical test).
  EXPECT_GT(canaried, 30);
  EXPECT_LT(canaried, 110);
}

// -- coalescer --------------------------------------------------------------

TEST(SrvCoalescer, ResultsAreBitIdenticalAcrossBatchCompositions) {
  // The batch function is pure per row, so whatever rows happen to share a
  // flush, each submitter must get exactly f(row) back.
  const auto f = [](const BatchItem& item) {
    double sum = 0.375;
    for (const double v : item.row) sum += v * 1.0625;
    return sum;
  };
  Coalescer coalescer(
      CoalescerOptions{500.0, 8, 64},
      [&f](const std::vector<BatchItem>& items) {
        std::vector<BatchResult> results;
        results.reserve(items.size());
        for (const BatchItem& item : items) {
          results.push_back({true, f(item), 0, {}});
        }
        return results;
      });
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kPerThread; ++i) {
        BatchItem item;
        item.client = "c" + std::to_string(t);
        item.model = "m";
        for (int j = 0; j < 5; ++j) item.row.push_back(rng.uniform(0.0, 9.0));
        const double want = f(item);
        const BatchResult got = coalescer.submit_wait(std::move(item));
        if (!got.ok || got.value != want) ++mismatches[t];
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0) << t;
  const CoalescerStats stats = coalescer.stats();
  EXPECT_EQ(stats.submitted, kThreads * kPerThread);
  EXPECT_EQ(stats.flushes, stats.full_flushes + stats.budget_flushes);
  EXPECT_EQ(stats.batch_fill.total, stats.flushes);
}

TEST(SrvCoalescer, FullBatchFlushesWithoutWaitingForTheBudget) {
  // Budget is 10 seconds; the only way these 4 submits finish promptly is
  // the max_batch=4 trigger.
  Coalescer coalescer(CoalescerOptions{10e6, 4, 16},
                      [](const std::vector<BatchItem>& items) {
                        return std::vector<BatchResult>(items.size(),
                                                        {true, 1.0, 0, {}});
                      });
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&coalescer] {
      const BatchResult result = coalescer.submit_wait({"c", "m", {1.0}});
      EXPECT_TRUE(result.ok);
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed_s, 5.0);
  EXPECT_GE(coalescer.stats().full_flushes, 1u);
}

TEST(SrvCoalescer, LoneRowFlushesWhenTheBudgetExpires) {
  Coalescer coalescer(CoalescerOptions{2000.0, 1000, 2000},
                      [](const std::vector<BatchItem>& items) {
                        return std::vector<BatchResult>(items.size(),
                                                        {true, 2.0, 0, {}});
                      });
  const BatchResult result = coalescer.submit_wait({"c", "m", {1.0}});
  EXPECT_TRUE(result.ok);
  EXPECT_GE(coalescer.stats().budget_flushes, 1u);
}

TEST(SrvCoalescer, DestructorDrainsPendingRows) {
  // Long budget, small submits, immediate destruction: the dtor must flush
  // the queue (shutdown skips the batch window) instead of deadlocking.
  std::vector<std::shared_ptr<Coalescer::Ticket>> tickets;
  {
    Coalescer coalescer(CoalescerOptions{10e6, 1000, 2000},
                        [](const std::vector<BatchItem>& items) {
                          return std::vector<BatchResult>(
                              items.size(), {true, 3.0, 0, {}});
                        });
    for (int i = 0; i < 5; ++i) {
      tickets.push_back(coalescer.submit({"c", "m", {double(i)}}));
    }
    for (const auto& ticket : tickets) {
      EXPECT_TRUE(coalescer.wait(ticket).ok);
    }
  }
}

// -- version-pinned service prediction --------------------------------------

TEST(SrvServicePin, PinnedVersionsServeSideBySide) {
  TempDir dir("pin");
  ModelRegistry registry(dir.path());
  const ModelBundle v1 = srv_bundle("m", 7);
  const ModelBundle v2 = srv_bundle("m", 8);
  ASSERT_TRUE(registry.put(v1));
  ASSERT_TRUE(registry.put(v2));
  EstimatorService service(dir.path());
  const std::vector<std::vector<double>> rows = {srv_row(21), srv_row(22)};
  const auto got1 = service.predict_rows("m", rows, 1);
  const auto got2 = service.predict_rows("m", rows, 2);
  ASSERT_TRUE(got1);
  ASSERT_TRUE(got2);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ((*got1)[i], v1.estimator.predict_row(rows[i]));
    EXPECT_EQ((*got2)[i], v2.estimator.predict_row(rows[i]));
  }
  // Different training data must actually disagree, or the reload tests
  // above this layer prove nothing.
  EXPECT_NE((*got1)[0], (*got2)[0]);
  // Unpinned still resolves the newest version.
  const auto newest = service.predict_rows("m", rows);
  ASSERT_TRUE(newest);
  EXPECT_EQ((*newest)[0], (*got2)[0]);
}

TEST(SrvServicePin, MissingPinnedVersionIsNulloptNeverFallback) {
  TempDir dir("pinmiss");
  ModelRegistry registry(dir.path());
  ASSERT_TRUE(registry.put(srv_bundle("m", 7)));
  ServiceOptions options;
  options.fallback_cf = 1.5;  // must NOT leak into the pinned path
  EstimatorService service(dir.path(), options);
  EXPECT_FALSE(service.predict_rows("m", {srv_row(1)}, 99));
  EXPECT_FALSE(service.bundle("m", 99));
  EXPECT_TRUE(service.predict_rows("m", {srv_row(1)}, 1));
}

TEST(SrvServicePin, SnapshotCarriesLatencyHistogram) {
  TempDir dir("snap");
  ModelRegistry registry(dir.path());
  ASSERT_TRUE(registry.put(srv_bundle("m", 7)));
  EstimatorService service(dir.path());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(service.predict_rows("m", {srv_row(i)}));
  }
  const ServiceStats stats = service.snapshot();
  EXPECT_EQ(stats.requests, 5u);
  EXPECT_EQ(stats.latency.total, 5u);
  EXPECT_GT(stats.latency.quantile_max(0.99), 0u);
}

// -- server integration (protocol over a socketpair) ------------------------

TEST(SrvServer, OptionValidationFailsFast) {
  ServerOptions options;  // neither socket nor stdio
  EXPECT_TRUE(server_options_error(options));
  options.stdio = true;
  EXPECT_FALSE(server_options_error(options));
  options.socket_path = "/tmp/x.sock";  // both: ambiguous
  EXPECT_TRUE(server_options_error(options));
  options.socket_path.clear();
  options.coalesce.queue_capacity = 4;
  options.coalesce.max_batch = 64;  // capacity < one batch
  EXPECT_TRUE(server_options_error(options));
}

TEST(SrvServer, AnswersTheProtocolEndToEnd) {
  TempDir dir("e2e");
  ModelRegistry registry(dir.path());
  const ModelBundle v1 = srv_bundle("m", 7);
  ASSERT_TRUE(registry.put(v1));
  EstimatorServer server(fast_server_options(dir.path()));
  Conn conn(server);
  EXPECT_EQ(conn.transact("PING\n"), "OK pong");
  const std::vector<double> row = srv_row(33);
  // The response must be the exact shortest-round-trip rendering of the
  // direct in-process prediction: coalescing is invisible in the bytes.
  EXPECT_EQ(conn.transact(estimate_line("c1", "m", row)),
            "OK " + format_double(v1.estimator.predict_row(row)));
  EXPECT_EQ(conn.transact("ESTIMATE c1 m 1 2\n"),
            "ERR 400 expected " +
                std::to_string(feature_names(FeatureSet::Classical).size()) +
                " features for 'm'");
  EXPECT_EQ(conn.transact("ESTIMATE c1 ghost 1\n"),
            "ERR 404 no usable bundle for 'ghost'");
  EXPECT_EQ(conn.transact("NOPE\n"), "ERR 400 unknown verb 'NOPE'");
  const std::string info = conn.transact("INFO m\n");
  EXPECT_NE(info.find("OK model=m stable=v1 canary=none"), std::string::npos);
  // STATS renders at settle time, so it reflects the 6 requests before it
  // on this very pipeline (PING + INFO settle as ok alongside the good
  // ESTIMATE).
  const std::string stats = conn.transact("STATS\n");
  EXPECT_NE(stats.find("requests=6"), std::string::npos) << stats;
  EXPECT_NE(stats.find("ok=3"), std::string::npos) << stats;
  conn.finish();
  const ServerStats server_stats = server.stats();
  EXPECT_EQ(server_stats.requests, 7u);
  EXPECT_EQ(server_stats.err_bad_request, 2u);
  EXPECT_EQ(server_stats.err_no_model, 1u);
  EXPECT_EQ(server_stats.request_ns.total, 3u);  // ESTIMATEs only
}

TEST(SrvServer, OverQuotaClientsAreShedWith429) {
  TempDir dir("quota");
  ModelRegistry registry(dir.path());
  ASSERT_TRUE(registry.put(srv_bundle("m", 7)));
  ServerOptions options = fast_server_options(dir.path());
  options.quota.rate_per_second = 0.001;  // effectively no refill in-test
  options.quota.burst = 2.0;
  EstimatorServer server(options);
  Conn conn(server);
  const std::string line = estimate_line("greedy", "m", srv_row(1));
  EXPECT_EQ(conn.transact(line).rfind("OK ", 0), 0u);
  EXPECT_EQ(conn.transact(line).rfind("OK ", 0), 0u);
  EXPECT_EQ(conn.transact(line), "ERR 429 client 'greedy' over quota");
  // Another tenant is untouched by the greedy one's empty bucket.
  EXPECT_EQ(conn.transact(estimate_line("modest", "m", srv_row(1)))
                .rfind("OK ", 0),
            0u);
  conn.finish();
  EXPECT_EQ(server.stats().err_over_quota, 1u);
}

TEST(SrvServer, HotReloadUnderTrafficServesOldOrNewNeverTorn) {
  // Satellite: ModelRegistry::put a newer bundle while requests are in
  // flight. Every response must be bit-exact from either v1 or v2 -- a torn
  // read would show up as any other byte string -- and after a reload scan
  // the stream must settle on v2.
  TempDir dir("reload");
  ModelRegistry registry(dir.path());
  const ModelBundle v1 = srv_bundle("m", 7);
  ASSERT_TRUE(registry.put(v1));
  ServerOptions options = fast_server_options(dir.path());
  options.reload_poll_seconds = 1e4;  // reloads happen only via reload_now
  EstimatorServer server(options);
  Conn conn(server);
  const std::vector<double> row = srv_row(42);
  const std::string want_v1 = "OK " + format_double(v1.estimator.predict_row(row));
  EXPECT_EQ(conn.transact(estimate_line("c", "m", row)), want_v1);

  const ModelBundle v2 = srv_bundle("m", 8);
  const std::string want_v2 = "OK " + format_double(v2.estimator.predict_row(row));
  ASSERT_NE(want_v1, want_v2);

  std::atomic<bool> put_done{false};
  std::thread writer([&] {
    ASSERT_TRUE(registry.put(v2));
    put_done.store(true);
    server.reload_now();
  });
  // Traffic while the put + reload land: nothing but the two exact strings
  // may ever come back (in-flight rows finish on whichever immutable
  // bundle they were routed to).
  bool saw_v2 = false;
  for (int i = 0; i < 200; ++i) {
    const std::string response = conn.transact(estimate_line("c", "m", row));
    ASSERT_TRUE(response == want_v1 || response == want_v2) << response;
    if (response == want_v2) saw_v2 = true;
    if (saw_v2 && put_done.load()) break;
  }
  writer.join();
  server.reload_now();
  EXPECT_EQ(conn.transact(estimate_line("c", "m", row)), want_v2);
  conn.finish();
  EXPECT_EQ(server.canary_status("m").stable_version, 2);
}

TEST(SrvServer, CorruptCanaryRollsBackWithoutClientErrors) {
  TempDir dir("rollback");
  ModelRegistry registry(dir.path());
  const ModelBundle v1 = srv_bundle("m", 7);
  ASSERT_TRUE(registry.put(v1));
  ServerOptions options = fast_server_options(dir.path());
  options.reload_poll_seconds = 1e4;
  options.canary.percent = 100;
  options.canary.fail_threshold = 2;
  EstimatorServer server(options);
  Conn conn(server);
  const std::vector<double> row = srv_row(5);
  const std::string want_v1 = "OK " + format_double(v1.estimator.predict_row(row));
  EXPECT_EQ(conn.transact(estimate_line("c", "m", row)), want_v1);
  // Drop a poisoned v2 into the registry: it never loads, so the load
  // breaker must roll it back after fail_threshold scans -- no client ever
  // sees an error.
  {
    std::ofstream poison(dir.path() + "/m-v2.mfb", std::ios::binary);
    poison << "macroflow-model-bundle 1\nthis is not a bundle\n";
  }
  server.reload_now();
  EXPECT_EQ(conn.transact(estimate_line("c", "m", row)), want_v1);
  server.reload_now();
  const CanaryStatus status = server.canary_status("m");
  EXPECT_EQ(status.stable_version, 1);
  EXPECT_EQ(status.canary_version, 0);
  EXPECT_EQ(status.rollbacks, 1u);
  // Condemned: further scans must not resurrect it.
  server.reload_now();
  EXPECT_EQ(server.canary_status("m").rollbacks, 1u);
  EXPECT_EQ(conn.transact(estimate_line("c", "m", row)), want_v1);
  conn.finish();
  EXPECT_EQ(server.stats().err_no_model, 0u);
  EXPECT_EQ(server.stats().err_internal, 0u);
}

TEST(SrvServer, CanaryServesPercentAndPromotes) {
  TempDir dir("promote");
  ModelRegistry registry(dir.path());
  const ModelBundle v1 = srv_bundle("m", 7);
  const ModelBundle v2 = srv_bundle("m", 8);
  ASSERT_TRUE(registry.put(v1));
  ServerOptions options = fast_server_options(dir.path());
  options.reload_poll_seconds = 1e4;
  options.canary.percent = 100;
  options.canary.promote_after = 3;
  EstimatorServer server(options);
  Conn conn(server);
  const std::vector<double> row = srv_row(9);
  const std::string want_v1 = "OK " + format_double(v1.estimator.predict_row(row));
  const std::string want_v2 = "OK " + format_double(v2.estimator.predict_row(row));
  EXPECT_EQ(conn.transact(estimate_line("c", "m", row)), want_v1);
  ASSERT_TRUE(registry.put(v2));
  server.reload_now();
  EXPECT_EQ(server.canary_status("m").canary_version, 2);
  // percent=100 routes every client to the canary; three successes promote.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(conn.transact(estimate_line("c", "m", row)), want_v2);
  }
  const CanaryStatus status = server.canary_status("m");
  EXPECT_EQ(status.stable_version, 2);
  EXPECT_EQ(status.canary_version, 0);
  EXPECT_EQ(status.promotions, 1u);
  conn.finish();
}

// -- per-request tracing ----------------------------------------------------

TEST(SrvTrace, TraceVerbReportsPerRequestMetrics) {
  TempDir dir("trace");
  ModelRegistry registry(dir.path());
  const ModelBundle v1 = srv_bundle("m", 7);
  ASSERT_TRUE(registry.put(v1));
  EstimatorServer server(fast_server_options(dir.path()));
  Conn conn(server);
  const std::vector<double> row = srv_row(5);
  const std::string want =
      "OK " + format_double(v1.estimator.predict_row(row)) + " id=t:1";
  EXPECT_EQ(conn.transact("id=t:1 " + estimate_line("c", "m", row)), want);
  // TRACE of a served id reports its queue wait, flush fill, predict
  // latency, and verdict.
  const std::string traced = conn.transact("TRACE t:1\n");
  EXPECT_EQ(traced.rfind("OK id=t:1 ", 0), 0u) << traced;
  EXPECT_NE(traced.find("queue_us="), std::string::npos) << traced;
  EXPECT_NE(traced.find("batch="), std::string::npos) << traced;
  EXPECT_NE(traced.find("predict_us="), std::string::npos) << traced;
  EXPECT_NE(traced.find("verdict=ok"), std::string::npos) << traced;
  // Unknown ids are a 404 echoing the lookup; a traced PING echoes too.
  EXPECT_EQ(conn.transact("TRACE nope:9\n").rfind("ERR 404", 0), 0u);
  EXPECT_EQ(conn.transact("id=t:2 PING\n"), "OK pong id=t:2");
  // Untraced requests keep the exact pre-tracing bytes.
  EXPECT_EQ(conn.transact(estimate_line("c", "m", row)),
            "OK " + format_double(v1.estimator.predict_row(row)));
  conn.finish();
  EXPECT_EQ(server.stats().traced, 1u);
  EXPECT_EQ(server.stats().trace_evicted, 0u);
}

// -- network chaos shim -----------------------------------------------------

TEST(SrvNetChaos, DrawsArePureAndBudgeted) {
  NetChaosOptions options;
  options.enabled = true;
  options.seed = 42;
  options.p_sever = 0.2;
  options.p_stall = 0.2;
  options.p_truncate = 0.2;
  options.p_duplicate = 0.1;
  options.p_garbage = 0.1;
  options.max_faults = 5;
  NetChaos a(options);
  NetChaos b(options);
  // draw() is a pure function of (conn, op, direction): identical across
  // instances and across repeated calls (no hidden stream state).
  int disruptive = 0;
  for (int op = 0; op < 200; ++op) {
    const NetChaos::Action act = a.draw(0, op, true);
    EXPECT_EQ(act, b.draw(0, op, true));
    EXPECT_EQ(act, a.draw(0, op, true));
    if (act != NetChaos::Action::None && act != NetChaos::Action::Stall) {
      ++disruptive;
    }
  }
  EXPECT_GT(disruptive, 0);
  // Op 0 never faults: the first exchange on a connection always works,
  // so a campaign cannot wedge a client before its first send.
  EXPECT_EQ(a.draw(0, 0, true), NetChaos::Action::None);
  EXPECT_EQ(a.draw(7, 0, false), NetChaos::Action::None);
  // tx and rx draw decorrelated streams.
  bool differs = false;
  for (int op = 1; op < 100; ++op) {
    differs = differs || a.draw(2, op, true) != a.draw(2, op, false);
  }
  EXPECT_TRUE(differs);
  // next() enforces the budget: after max_faults disruptive injections the
  // shim degrades every further disruptive draw to None (termination).
  int injected = 0;
  for (int op = 0; op < 500; ++op) {
    const NetChaos::Action act = a.next(1, op, false);
    if (act != NetChaos::Action::None && act != NetChaos::Action::Stall) {
      ++injected;
    }
  }
  EXPECT_EQ(injected, options.max_faults);
  EXPECT_EQ(a.faults_injected(), options.max_faults);
  // Garbage lines are deterministic and can never be a valid response.
  EXPECT_EQ(a.garbage_line(3, 9), b.garbage_line(3, 9));
  EXPECT_EQ(a.garbage_line(3, 9).rfind("XCHAOS ", 0), 0u);
  // A disabled shim is a strict no-op.
  NetChaos off(NetChaosOptions{});
  for (int op = 0; op < 100; ++op) {
    EXPECT_EQ(off.next(0, op, true), NetChaos::Action::None);
  }
  EXPECT_EQ(off.faults_injected(), 0);
}

// -- resilient client -------------------------------------------------------

/// A real socket-mode daemon on its own thread, for client tests.
class SocketDaemon {
 public:
  explicit SocketDaemon(const std::string& registry_dir,
                        const std::string& socket_path) {
    ServerOptions options = fast_server_options(registry_dir);
    options.stdio = false;
    options.socket_path = socket_path;
    options.cancel = &cancel_;
    server_ = std::make_unique<EstimatorServer>(std::move(options));
    thread_ = std::thread([this] { server_->run(); });
  }
  ~SocketDaemon() {
    cancel_.cancel();
    thread_.join();
  }

 private:
  CancelToken cancel_;
  std::unique_ptr<EstimatorServer> server_;
  std::thread thread_;
};

TEST(SrvClient, OptionValidationFailsFast) {
  ClientOptions options;
  EXPECT_TRUE(client_options_error(options));  // no socket path
  options.socket_path = "/tmp/x.sock";
  EXPECT_FALSE(client_options_error(options));
  ClientOptions chaos = options;
  chaos.chaos.enabled = true;
  chaos.chaos.p_garbage = 0.1;
  chaos.trace = false;
  // Untraced + duplicate/garbage chaos would deliver a stray line as some
  // later request's answer: rejected up front, never a silent corruption.
  EXPECT_TRUE(client_options_error(chaos));
  chaos.trace = true;
  EXPECT_FALSE(client_options_error(chaos));
  ClientOptions sum = options;
  sum.chaos.p_sever = 0.6;
  sum.chaos.p_stall = 0.6;
  EXPECT_TRUE(client_options_error(sum));  // probabilities sum over 1
}

TEST(SrvClient, RetriesThroughSeededChaos) {
  TempDir dir("chaos_client");
  ModelRegistry registry(dir.path());
  const ModelBundle v1 = srv_bundle("m", 7);
  ASSERT_TRUE(registry.put(v1));
  const std::string socket_path = dir.path() + "/daemon.sock";
  SocketDaemon daemon(dir.path(), socket_path);

  ClientOptions copts;
  copts.socket_path = socket_path;
  copts.client_name = "chaos";
  copts.connect_deadline_s = 10.0;
  copts.request_deadline_s = 30.0;
  copts.max_retries = 64;
  copts.backoff_base_ms = 0.5;
  copts.backoff_cap_ms = 5.0;
  copts.chaos.enabled = true;
  copts.chaos.seed = 7;
  copts.chaos.p_sever = 0.08;
  copts.chaos.p_stall = 0.05;
  copts.chaos.p_truncate = 0.08;
  copts.chaos.p_duplicate = 0.08;
  copts.chaos.p_garbage = 0.08;
  copts.chaos.stall_ms = 1.0;
  ServeClient client(std::move(copts));
  const std::vector<double> row = srv_row(5);
  const double want = v1.estimator.predict_row(row);
  for (int i = 0; i < 60; ++i) {
    std::string error;
    const std::optional<double> got = client.estimate("c", "m", row, &error);
    ASSERT_TRUE(got) << "request " << i << ": " << error;
    // The whole point: chaos may cost retries, never correctness.
    EXPECT_EQ(*got, want);
  }
  const ClientStats& stats = client.stats();
  EXPECT_EQ(stats.ok, 60u);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_GT(stats.transport_faults, 0u);
  EXPECT_GT(stats.stray_lines, 0u);  // duplicates/garbage were id-filtered
  EXPECT_GT(stats.reconnects, 0u);
  EXPECT_GT(client.chaos_faults(), 0);
  client.close();
}

TEST(SrvClient, BreakerOpensAndRecovers) {
  TempDir dir("breaker");
  const std::string socket_path = dir.path() + "/daemon.sock";
  ClientOptions copts;
  copts.socket_path = socket_path;
  copts.client_name = "brk";
  copts.connect_deadline_s = 0.05;
  copts.request_deadline_s = 0.1;
  copts.max_retries = 0;
  copts.breaker_threshold = 2;
  copts.breaker_cooldown_s = 0.05;
  ServeClient client(std::move(copts));
  std::string error;
  EXPECT_FALSE(client.ping(&error));  // no daemon yet: transport failure
  EXPECT_FALSE(client.ping(&error));  // second consecutive failure opens it
  EXPECT_EQ(client.stats().breaker_opens, 1u);
  EXPECT_FALSE(client.ping(&error));  // within the cooldown: fail fast
  EXPECT_GE(client.stats().breaker_fastfails, 1u);
  EXPECT_EQ(error, "circuit breaker open");

  // Bring a daemon up; once the cooldown passes, a half-open probe closes
  // the breaker and normal service resumes.
  ModelRegistry registry(dir.path());
  ASSERT_TRUE(registry.put(srv_bundle("m", 7)));
  SocketDaemon daemon(dir.path(), socket_path);
  bool ok = false;
  for (int i = 0; i < 100 && !ok; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    ok = client.ping(&error);
  }
  EXPECT_TRUE(ok) << error;
  EXPECT_TRUE(client.ping(&error)) << error;  // breaker closed, stays closed
  client.close();
}

// -- supervised self-healing daemon -----------------------------------------

SupervisedOptions test_supervised_options(const std::string& registry_dir,
                                          const std::string& socket_path,
                                          const CancelToken* cancel) {
  // The child is this very test binary re-executed through the
  // --serve-child hook (answered in test_main.cpp before gtest runs).
  SupervisedOptions sup;
  sup.socket_path = socket_path;
  sup.child_args = {"--serve-child", registry_dir, "{LISTEN_FD}",
                    socket_path + ".stats.json"};
  sup.heartbeat_path = socket_path + ".stats.json";
  sup.heartbeat_timeout_s = 30.0;  // child exits drive respawn in tests
  sup.backoff_base_ms = 10.0;
  sup.backoff_cap_ms = 50.0;
  sup.grace_seconds = 3.0;
  sup.poll_ms = 5.0;
  sup.quiet = true;
  sup.cancel = cancel;
  return sup;
}

TEST(SrvSupervised, OptionValidationFailsFast) {
  SupervisedOptions sup;
  EXPECT_TRUE(supervised_options_error(sup));  // no socket
  sup.socket_path = "/tmp/x.sock";
  EXPECT_TRUE(supervised_options_error(sup));  // no child args
  sup.child_args = {"serve"};
  EXPECT_TRUE(supervised_options_error(sup));  // no {LISTEN_FD} slot
  sup.child_args = {"serve", "--listen-fd", "{LISTEN_FD}"};
  EXPECT_FALSE(supervised_options_error(sup));
  sup.max_respawns = -1;
  EXPECT_TRUE(supervised_options_error(sup));
}

TEST(SrvSupervised, RespawnsKilledDaemonAndServes) {
  TempDir dir("supervised");
  ModelRegistry registry(dir.path());
  const ModelBundle v1 = srv_bundle("m", 7);
  ASSERT_TRUE(registry.put(v1));
  const std::string socket_path = dir.path() + "/sup.sock";
  CancelToken cancel;
  SupervisedOptions sup =
      test_supervised_options(dir.path(), socket_path, &cancel);
  std::mutex mutex;
  std::vector<pid_t> pids;
  sup.on_spawn = [&](pid_t pid) {
    std::lock_guard<std::mutex> lock(mutex);
    pids.push_back(pid);
  };
  SupervisedResult result;
  std::thread supervisor([&] { result = run_supervised(sup); });

  ClientOptions copts;
  copts.socket_path = socket_path;
  copts.client_name = "sup";
  copts.connect_deadline_s = 15.0;
  copts.request_deadline_s = 30.0;
  ServeClient client(std::move(copts));
  const std::vector<double> row = srv_row(5);
  const double want = v1.estimator.predict_row(row);
  std::string error;
  std::optional<double> got = client.estimate("c", "m", row, &error);
  ASSERT_TRUE(got) << error;
  EXPECT_EQ(*got, want);

  pid_t first = -1;
  {
    std::lock_guard<std::mutex> lock(mutex);
    ASSERT_FALSE(pids.empty());
    first = pids.front();
  }
  ASSERT_EQ(::kill(first, SIGKILL), 0);
  // The supervisor keeps the listener bound while it respawns, so the
  // client's reconnect parks in the backlog and the retried answer is
  // bit-identical -- a kill -9 costs a latency blip, nothing else.
  got = client.estimate("c", "m", row, &error);
  ASSERT_TRUE(got) << error;
  EXPECT_EQ(*got, want);
  EXPECT_GT(client.stats().reconnects + client.stats().retries, 0u);
  client.close();

  cancel.cancel();
  supervisor.join();
  EXPECT_EQ(result.exit_code, 130);
  EXPECT_GE(result.spawns, 2);
  EXPECT_GE(result.respawns, 1);
  EXPECT_EQ(result.error, "");
  // The supervisor unlinked its socket on the way out.
  EXPECT_FALSE(fs::exists(socket_path));
}

// -- chaos campaign ---------------------------------------------------------

TEST(SrvChaosCampaign, SixteenClientsBitIdenticalUnderChaos) {
  TempDir dir("campaign");
  ModelRegistry registry(dir.path());
  const ModelBundle v1 = srv_bundle("m", 7);
  ASSERT_TRUE(registry.put(v1));
  const std::string socket_path = dir.path() + "/campaign.sock";
  CancelToken cancel;
  SupervisedOptions sup =
      test_supervised_options(dir.path(), socket_path, &cancel);
  std::atomic<pid_t> current_child{-1};
  sup.on_spawn = [&](pid_t pid) { current_child.store(pid); };
  SupervisedResult result;
  std::thread supervisor([&] { result = run_supervised(sup); });

  // 16 closed-loop clients, each under its own deterministically seeded
  // chaos stream, while the daemon is SIGKILLed under load. Acceptance:
  // zero wrong answers -- every delivered OK is bit-identical to the
  // no-chaos prediction -- and zero gave-up requests.
  constexpr int kClients = 16;
  constexpr int kRequests = 25;
  std::vector<ClientStats> stats(kClients);
  std::vector<int> wrong(kClients, 0);
  std::vector<int> gave_up(kClients, 0);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ClientOptions copts;
      copts.socket_path = socket_path;
      copts.client_name = "camp" + std::to_string(c);
      copts.connect_deadline_s = 20.0;
      copts.request_deadline_s = 60.0;
      copts.max_retries = 200;
      copts.backoff_base_ms = 1.0;
      copts.backoff_cap_ms = 20.0;
      copts.chaos.enabled = true;
      copts.chaos.seed = task_seed(99, copts.client_name);
      copts.chaos.p_sever = 0.05;
      copts.chaos.p_truncate = 0.05;
      copts.chaos.p_duplicate = 0.05;
      copts.chaos.p_garbage = 0.05;
      ServeClient client(std::move(copts));
      for (int i = 0; i < kRequests; ++i) {
        const std::vector<double> row =
            srv_row(task_seed(static_cast<std::uint64_t>(c), "row") + i);
        const double want = v1.estimator.predict_row(row);
        std::string error;
        const std::optional<double> got =
            client.estimate("tenant", "m", row, &error);
        if (!got) {
          ++gave_up[c];
        } else if (*got != want) {
          ++wrong[c];
        }
      }
      stats[c] = client.stats();
    });
  }

  // Two daemon kills while the fleet is (very likely) mid-load; respawn is
  // asserted regardless, because each SIGKILL lands on a live child pid.
  for (int round = 0; round < 2; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    const pid_t pid = current_child.load();
    if (pid > 0) (void)::kill(pid, SIGKILL);
  }
  for (std::thread& thread : threads) thread.join();

  std::uint64_t total_ok = 0;
  std::uint64_t total_retries = 0;
  std::uint64_t total_reconnects = 0;
  std::uint64_t total_strays = 0;
  int total_wrong = 0;
  int total_gave_up = 0;
  for (int c = 0; c < kClients; ++c) {
    total_ok += stats[c].ok;
    total_retries += stats[c].retries;
    total_reconnects += stats[c].reconnects;
    total_strays += stats[c].stray_lines;
    total_wrong += wrong[c];
    total_gave_up += gave_up[c];
  }
  EXPECT_EQ(total_wrong, 0);
  EXPECT_EQ(total_gave_up, 0);
  EXPECT_EQ(total_ok,
            static_cast<std::uint64_t>(kClients) * kRequests);
  EXPECT_GT(total_retries, 0u);
  EXPECT_GT(total_reconnects, 0u);
  EXPECT_GT(total_strays, 0u);

  cancel.cancel();
  supervisor.join();
  EXPECT_EQ(result.exit_code, 130);
  EXPECT_GE(result.respawns, 1);
}

}  // namespace
}  // namespace mf
