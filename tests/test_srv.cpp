// Serving-daemon subsystem tests (src/srv): wire protocol, EINTR-safe fd
// I/O, log2 histograms, token-bucket quotas, the canary state machine, the
// batch coalescer's bit-identity and flush triggers, version-pinned service
// prediction, and full protocol integration over a socketpair -- including
// the hot-reload-under-traffic and canary rollback/promotion paths.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <thread>

#include "common/histogram.hpp"
#include "common/io_util.hpp"
#include "common/parse_num.hpp"
#include "common/rng.hpp"
#include "serve/registry.hpp"
#include "srv/canary.hpp"
#include "srv/coalescer.hpp"
#include "srv/protocol.hpp"
#include "srv/quota.hpp"
#include "srv/server.hpp"

namespace mf {
namespace {

namespace fs = std::filesystem;

// -- fixtures ---------------------------------------------------------------
// Protocol and routing behaviour is independent of estimator quality, so
// everything trains tiny linear models on synthetic data (fast, and two
// different training seeds give two versions with *different* predictions,
// which is what the reload/canary tests need to tell versions apart).

Dataset srv_dataset(std::size_t n, std::uint64_t seed) {
  Dataset data;
  data.feature_names = feature_names(FeatureSet::Classical);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row(data.feature_names.size());
    double target = 0.4;
    for (std::size_t j = 0; j < row.size(); ++j) {
      row[j] = j % 2 == 0 ? rng.uniform(0.0, 4000.0) : rng.uniform(0.0, 1.0);
      target += row[j] * (j % 3 == 0 ? 2.5e-4 : 0.05);
    }
    target += rng.uniform(0.0, 0.2);
    data.add(std::move(row), target, "s" + std::to_string(i));
  }
  return data;
}

ModelBundle srv_bundle(const std::string& name, std::uint64_t data_seed) {
  ModelBundle bundle;
  bundle.name = name;
  bundle.provenance.seed = 3;
  bundle.provenance.dataset_seed = data_seed;
  bundle.provenance.dataset_rows = 60;
  bundle.estimator = CfEstimator(EstimatorKind::LinearRegression,
                                 FeatureSet::Classical);
  bundle.estimator.train(srv_dataset(60, data_seed));
  return bundle;
}

std::vector<double> srv_row(std::uint64_t seed) {
  return srv_dataset(1, seed).x[0];
}

std::string estimate_line(const std::string& client, const std::string& model,
                          const std::vector<double>& row) {
  std::string line = "ESTIMATE " + client + " " + model;
  for (const double v : row) line += " " + format_double(v);
  line += "\n";
  return line;
}

/// Scratch registry directory wiped per test.
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_((fs::temp_directory_path() /
               ("mf_srv_" + tag + "_" + std::to_string(::getpid())))
                  .string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

ServerOptions fast_server_options(const std::string& registry_dir) {
  ServerOptions options;
  options.registry_dir = registry_dir;
  options.stdio = true;  // satisfies validation; tests drive serve_stream
  options.coalesce.coalesce_us = 200.0;
  options.coalesce.max_batch = 32;
  options.coalesce.queue_capacity = 128;
  return options;
}

/// One live protocol connection into `server` over a socketpair, with the
/// serving side running on its own thread (exactly the daemon's per-
/// connection shape).
class Conn {
 public:
  explicit Conn(EstimatorServer& server) {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    client_fd_ = fds[0];
    server_fd_ = fds[1];
    thread_ = std::thread([&server, fd = server_fd_] {
      server.serve_stream(fd, fd);
    });
  }
  ~Conn() { finish(); }

  void send(const std::string& bytes) {
    ASSERT_TRUE(write_all(client_fd_, bytes));
  }

  /// Next response line ("" after EOF).
  std::string read_line() {
    for (;;) {
      if (std::optional<std::string> line = pop_line(buffer_)) return *line;
      const std::optional<std::size_t> n = read_some(client_fd_, buffer_);
      if (!n || *n == 0) return "";
    }
  }

  std::string transact(const std::string& request_line) {
    send(request_line);
    return read_line();
  }

  /// Half-close the request direction, join the server side, return any
  /// remaining response lines.
  void finish() {
    if (client_fd_ < 0) return;
    ::shutdown(client_fd_, SHUT_WR);
    thread_.join();
    ::close(server_fd_);
    ::close(client_fd_);
    client_fd_ = -1;
  }

 private:
  int client_fd_ = -1;
  int server_fd_ = -1;
  std::string buffer_;
  std::thread thread_;
};

// -- protocol ---------------------------------------------------------------

TEST(SrvProtocol, ParsesEstimate) {
  std::string error;
  const std::optional<Request> request =
      parse_request("ESTIMATE tenant_a model-1 1 2.5 -3e-2", &error);
  ASSERT_TRUE(request) << error;
  EXPECT_EQ(request->verb, ReqVerb::Estimate);
  EXPECT_EQ(request->client, "tenant_a");
  EXPECT_EQ(request->model, "model-1");
  ASSERT_EQ(request->features.size(), 3u);
  EXPECT_EQ(request->features[0], 1.0);
  EXPECT_EQ(request->features[1], 2.5);
  EXPECT_EQ(request->features[2], -3e-2);
}

TEST(SrvProtocol, TokenizesOnRunsAndTolerigesCr) {
  std::string error;
  const std::optional<Request> request =
      parse_request("  ESTIMATE \t c  m \t 1   2 ", &error);
  ASSERT_TRUE(request) << error;
  EXPECT_EQ(request->features.size(), 2u);
  EXPECT_TRUE(parse_request("PING", &error));
  EXPECT_TRUE(parse_request("STATS", &error));
  EXPECT_TRUE(parse_request("INFO m", &error));
}

TEST(SrvProtocol, RejectsMalformedRequests) {
  std::string error;
  EXPECT_FALSE(parse_request("", &error));
  EXPECT_FALSE(parse_request("FROB x", &error));
  EXPECT_FALSE(parse_request("ESTIMATE c", &error));          // no model
  EXPECT_FALSE(parse_request("ESTIMATE c m", &error));        // no features
  EXPECT_FALSE(parse_request("ESTIMATE c m 1x", &error));     // bad float
  EXPECT_FALSE(parse_request("ESTIMATE c m nan", &error));    // non-finite
  EXPECT_FALSE(parse_request("ESTIMATE c m inf", &error));
  EXPECT_FALSE(parse_request("PING extra", &error));
  EXPECT_FALSE(parse_request("INFO", &error));
  std::string flood = "ESTIMATE c m";
  for (std::size_t i = 0; i <= kMaxFeatures; ++i) flood += " 1";
  EXPECT_FALSE(parse_request(flood, &error));
  EXPECT_NE(error.find("features"), std::string::npos);
  const std::string long_name(200, 'a');
  EXPECT_FALSE(parse_request("ESTIMATE " + long_name + " m 1", &error));
}

TEST(SrvProtocol, PopLineSplitsBufferedStream) {
  std::string buffer = "PING\r\nSTATS\nIN";
  std::optional<std::string> line = pop_line(buffer);
  ASSERT_TRUE(line);
  EXPECT_EQ(*line, "PING");
  line = pop_line(buffer);
  ASSERT_TRUE(line);
  EXPECT_EQ(*line, "STATS");
  EXPECT_FALSE(pop_line(buffer));  // incomplete tail stays buffered
  EXPECT_EQ(buffer, "IN");
  buffer += "FO m\n";
  line = pop_line(buffer);
  ASSERT_TRUE(line);
  EXPECT_EQ(*line, "INFO m");
  EXPECT_TRUE(buffer.empty());
}

TEST(SrvProtocol, CfFormatRoundTripsBitwise) {
  // The client-side half of the bit-identity contract: `OK <cf>` reparses
  // to the exact double for awkward values (shortest round-trip format).
  for (const double cf : {0.1, 1.0 / 3.0, 1.375, 6.25e-7, 12345.678901234567}) {
    const std::string line = format_ok_cf(cf);
    const std::optional<double> back = parse_ok_cf(line);
    ASSERT_TRUE(back) << line;
    EXPECT_EQ(*back, cf) << line;
  }
  EXPECT_FALSE(parse_ok_cf("ERR 400 nope\n"));
  EXPECT_FALSE(parse_ok_cf("OK pong\n"));
  EXPECT_EQ(format_err(429, "over quota"), "ERR 429 over quota\n");
}

// -- histogram --------------------------------------------------------------

TEST(SrvHistogram, BucketsByBitWidthAndAnswersQuantiles) {
  Log2Histogram h;
  EXPECT_EQ(h.quantile_max(0.5), 0u);  // empty
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.total, 1000u);
  // The median observation (500) lives in bucket bit_width(500)=9, whose
  // upper bound is 511.
  EXPECT_EQ(h.quantile_max(0.5), 511u);
  EXPECT_EQ(h.quantile_max(1.0), 1023u);
  EXPECT_LE(h.quantile_max(0.01), 15u);
}

TEST(SrvHistogram, MergesAndSaturates) {
  Log2Histogram a;
  Log2Histogram b;
  a.record(0);
  a.record(7);
  b.record(~std::uint64_t{0});  // saturates into the last bucket
  a += b;
  EXPECT_EQ(a.total, 3u);
  EXPECT_EQ(a.counts[Log2Histogram::kBuckets - 1], 1u);
  // The open-ended last bucket reports its lower edge, not 2^47-1.
  EXPECT_EQ(a.quantile_max(1.0),
            std::uint64_t{1} << (Log2Histogram::kBuckets - 2));
  EXPECT_EQ(a.counts[0], 1u);  // zero has bit_width 0
}

// -- fd I/O helpers ---------------------------------------------------------

TEST(SrvIoUtil, WriteAllAndReadAllMoveLargePayloads) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::string payload;
  payload.reserve(300000);
  Rng rng(11);
  for (int i = 0; i < 300000; ++i) {
    payload.push_back(static_cast<char>('a' + rng.uniform_int(0, 25)));
  }
  // Writer on a thread: the payload exceeds the pipe buffer, so write_all
  // must survive short writes while the reader drains.
  std::thread writer([fd = fds[1], &payload] {
    EXPECT_TRUE(write_all(fd, payload));
    ::close(fd);
  });
  const std::optional<std::string> got = read_all(fds[0]);
  writer.join();
  ::close(fds[0]);
  ASSERT_TRUE(got);
  EXPECT_EQ(*got, payload);
}

TEST(SrvIoUtil, SigpipeIgnoreIsIdempotentAndTurnsEpipeIntoFalse) {
  ASSERT_TRUE(ignore_sigpipe());
  ASSERT_TRUE(ignore_sigpipe());  // second call is a no-op
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[0]);
  // Without the ignore this write would raise SIGPIPE and kill the test.
  EXPECT_FALSE(write_all(fds[1], "peer is gone"));
  ::close(fds[1]);
}

TEST(SrvIoUtil, WaitReadableTimesOutAndWakes) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  EXPECT_FALSE(wait_readable(fds[0], 10));  // nothing buffered
  ASSERT_TRUE(write_all(fds[1], "x"));
  EXPECT_TRUE(wait_readable(fds[0], 1000));
  std::string out;
  EXPECT_EQ(read_some(fds[0], out), 1u);
  EXPECT_EQ(out, "x");
  ::close(fds[0]);
  ::close(fds[1]);
}

// -- quotas -----------------------------------------------------------------

constexpr std::uint64_t kSecond = 1000000000ull;

TEST(SrvQuota, DisabledAdmitsEverything) {
  ClientQuota quota(QuotaOptions{});  // rate <= 0: admission control off
  EXPECT_FALSE(quota.enabled());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(quota.try_acquire("c", 0));
  EXPECT_EQ(quota.shed_total(), 0u);
}

TEST(SrvQuota, BurstThenRefill) {
  ClientQuota quota(QuotaOptions{2.0, 3.0, 16});
  // A fresh client starts with a full burst of 3...
  EXPECT_TRUE(quota.try_acquire("c", 0));
  EXPECT_TRUE(quota.try_acquire("c", 0));
  EXPECT_TRUE(quota.try_acquire("c", 0));
  EXPECT_FALSE(quota.try_acquire("c", 0));
  // ...and refills at 2 tokens/s: after half a second exactly one token.
  EXPECT_TRUE(quota.try_acquire("c", kSecond / 2));
  EXPECT_FALSE(quota.try_acquire("c", kSecond / 2));
  // A long idle period caps at burst, not rate * elapsed.
  EXPECT_TRUE(quota.try_acquire("c", 100 * kSecond));
  EXPECT_TRUE(quota.try_acquire("c", 100 * kSecond));
  EXPECT_TRUE(quota.try_acquire("c", 100 * kSecond));
  EXPECT_FALSE(quota.try_acquire("c", 100 * kSecond));
  EXPECT_EQ(quota.admitted_total(), 7u);
  EXPECT_EQ(quota.shed_total(), 3u);
}

TEST(SrvQuota, ClientsAreIndependentAndClockRegressionIsSafe) {
  ClientQuota quota(QuotaOptions{1.0, 1.0, 16});
  EXPECT_TRUE(quota.try_acquire("a", 5 * kSecond));
  EXPECT_TRUE(quota.try_acquire("b", 5 * kSecond));  // b has its own bucket
  EXPECT_FALSE(quota.try_acquire("a", 5 * kSecond));
  // An earlier timestamp (reordered threads) must not mint tokens.
  EXPECT_FALSE(quota.try_acquire("a", 4 * kSecond));
  EXPECT_TRUE(quota.try_acquire("a", 6 * kSecond + kSecond));
}

TEST(SrvQuota, RecyclesStalestBucketAtCapacity) {
  ClientQuota quota(QuotaOptions{1.0, 1.0, 2});
  EXPECT_TRUE(quota.try_acquire("old", 0));
  EXPECT_TRUE(quota.try_acquire("new", 10 * kSecond));
  EXPECT_EQ(quota.tracked_clients(), 2u);
  // A third client evicts the stalest bucket ("old"), not a fresh one.
  EXPECT_TRUE(quota.try_acquire("third", 10 * kSecond));
  EXPECT_EQ(quota.tracked_clients(), 2u);
  // "new" kept its (empty) bucket: still shed at the same timestamp.
  EXPECT_FALSE(quota.try_acquire("new", 10 * kSecond));
}

// -- canary state machine ---------------------------------------------------

TEST(SrvCanary, FirstCleanLoadBecomesStable) {
  CanaryController ctl(CanaryOptions{50, 3, 5});
  EXPECT_EQ(ctl.version_to_load(3), 3);  // nothing stable: anything goes
  ctl.on_load_ok(3);
  EXPECT_EQ(ctl.status().stable_version, 3);
  EXPECT_EQ(ctl.status().canary_version, 0);
  EXPECT_EQ(ctl.version_to_load(3), 0);
  EXPECT_EQ(ctl.version_to_load(2), 0);  // older files are history
}

TEST(SrvCanary, PercentZeroHotSwapsDirectly) {
  CanaryController ctl(CanaryOptions{0, 3, 5});
  ctl.on_load_ok(1);
  ctl.on_load_ok(2);
  EXPECT_EQ(ctl.status().stable_version, 2);
  EXPECT_EQ(ctl.status().canary_version, 0);
  EXPECT_EQ(ctl.status().canaries_started, 0u);
}

TEST(SrvCanary, PromotesAfterConsecutiveSuccesses) {
  CanaryController ctl(CanaryOptions{100, 3, 4});
  ctl.on_load_ok(1);
  ctl.on_load_ok(2);
  EXPECT_EQ(ctl.status().canary_version, 2);
  EXPECT_EQ(ctl.status().canaries_started, 1u);
  ctl.on_canary_result(true);
  ctl.on_canary_result(true);
  ctl.on_canary_result(false);  // a failure resets the success streak
  ctl.on_canary_result(true);
  ctl.on_canary_result(true);
  ctl.on_canary_result(true);
  EXPECT_EQ(ctl.status().canary_version, 2);  // 3 < promote_after
  ctl.on_canary_result(true);
  EXPECT_EQ(ctl.status().stable_version, 2);
  EXPECT_EQ(ctl.status().canary_version, 0);
  EXPECT_EQ(ctl.status().promotions, 1u);
}

TEST(SrvCanary, RollsBackOnServeFailuresAndNeverRetries) {
  CanaryController ctl(CanaryOptions{100, 2, 100});
  ctl.on_load_ok(1);
  ctl.on_load_ok(2);
  ctl.on_canary_result(false);
  EXPECT_EQ(ctl.status().canary_version, 2);  // 1 < fail_threshold
  ctl.on_canary_result(false);
  EXPECT_EQ(ctl.status().canary_version, 0);
  EXPECT_EQ(ctl.status().stable_version, 1);
  EXPECT_EQ(ctl.status().rollbacks, 1u);
  EXPECT_TRUE(ctl.is_bad(2));
  EXPECT_EQ(ctl.version_to_load(2), 0);  // condemned forever
  EXPECT_EQ(ctl.version_to_load(3), 3);  // a newer candidate still welcome
  ctl.on_load_ok(2);                     // stale load result: ignored
  EXPECT_EQ(ctl.status().canary_version, 0);
}

TEST(SrvCanary, LoadFailuresTripTheSameBreaker) {
  CanaryController ctl(CanaryOptions{100, 3, 100});
  ctl.on_load_ok(1);
  ctl.on_load_failed(2);
  ctl.on_load_failed(2);
  EXPECT_FALSE(ctl.is_bad(2));
  ctl.on_load_failed(2);
  EXPECT_TRUE(ctl.is_bad(2));
  EXPECT_EQ(ctl.status().rollbacks, 1u);
  EXPECT_EQ(ctl.status().stable_version, 1);
  // A load success in between resets the count (flaky disk, not poison).
  ctl.on_load_failed(3);
  ctl.on_load_ok(3);
  EXPECT_EQ(ctl.status().canary_version, 3);
}

TEST(SrvCanary, ClientHashSplitsDeterministically) {
  CanaryController ctl(CanaryOptions{30, 3, 100});
  ctl.on_load_ok(1);
  ctl.on_load_ok(2);
  int canaried = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string client = "tenant-" + std::to_string(i);
    const bool first = ctl.use_canary(client);
    EXPECT_EQ(first, ctl.use_canary(client));  // stable per tenant
    EXPECT_EQ(first, CanaryController::client_hash(client) % 100 < 30);
    canaried += first ? 1 : 0;
  }
  // Roughly 30% of tenants (hash mixing, not a statistical test).
  EXPECT_GT(canaried, 30);
  EXPECT_LT(canaried, 110);
}

// -- coalescer --------------------------------------------------------------

TEST(SrvCoalescer, ResultsAreBitIdenticalAcrossBatchCompositions) {
  // The batch function is pure per row, so whatever rows happen to share a
  // flush, each submitter must get exactly f(row) back.
  const auto f = [](const BatchItem& item) {
    double sum = 0.375;
    for (const double v : item.row) sum += v * 1.0625;
    return sum;
  };
  Coalescer coalescer(
      CoalescerOptions{500.0, 8, 64},
      [&f](const std::vector<BatchItem>& items) {
        std::vector<BatchResult> results;
        results.reserve(items.size());
        for (const BatchItem& item : items) {
          results.push_back({true, f(item), 0, {}});
        }
        return results;
      });
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kPerThread; ++i) {
        BatchItem item;
        item.client = "c" + std::to_string(t);
        item.model = "m";
        for (int j = 0; j < 5; ++j) item.row.push_back(rng.uniform(0.0, 9.0));
        const double want = f(item);
        const BatchResult got = coalescer.submit_wait(std::move(item));
        if (!got.ok || got.value != want) ++mismatches[t];
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0) << t;
  const CoalescerStats stats = coalescer.stats();
  EXPECT_EQ(stats.submitted, kThreads * kPerThread);
  EXPECT_EQ(stats.flushes, stats.full_flushes + stats.budget_flushes);
  EXPECT_EQ(stats.batch_fill.total, stats.flushes);
}

TEST(SrvCoalescer, FullBatchFlushesWithoutWaitingForTheBudget) {
  // Budget is 10 seconds; the only way these 4 submits finish promptly is
  // the max_batch=4 trigger.
  Coalescer coalescer(CoalescerOptions{10e6, 4, 16},
                      [](const std::vector<BatchItem>& items) {
                        return std::vector<BatchResult>(items.size(),
                                                        {true, 1.0, 0, {}});
                      });
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&coalescer] {
      const BatchResult result = coalescer.submit_wait({"c", "m", {1.0}});
      EXPECT_TRUE(result.ok);
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed_s, 5.0);
  EXPECT_GE(coalescer.stats().full_flushes, 1u);
}

TEST(SrvCoalescer, LoneRowFlushesWhenTheBudgetExpires) {
  Coalescer coalescer(CoalescerOptions{2000.0, 1000, 2000},
                      [](const std::vector<BatchItem>& items) {
                        return std::vector<BatchResult>(items.size(),
                                                        {true, 2.0, 0, {}});
                      });
  const BatchResult result = coalescer.submit_wait({"c", "m", {1.0}});
  EXPECT_TRUE(result.ok);
  EXPECT_GE(coalescer.stats().budget_flushes, 1u);
}

TEST(SrvCoalescer, DestructorDrainsPendingRows) {
  // Long budget, small submits, immediate destruction: the dtor must flush
  // the queue (shutdown skips the batch window) instead of deadlocking.
  std::vector<std::shared_ptr<Coalescer::Ticket>> tickets;
  {
    Coalescer coalescer(CoalescerOptions{10e6, 1000, 2000},
                        [](const std::vector<BatchItem>& items) {
                          return std::vector<BatchResult>(
                              items.size(), {true, 3.0, 0, {}});
                        });
    for (int i = 0; i < 5; ++i) {
      tickets.push_back(coalescer.submit({"c", "m", {double(i)}}));
    }
    for (const auto& ticket : tickets) {
      EXPECT_TRUE(coalescer.wait(ticket).ok);
    }
  }
}

// -- version-pinned service prediction --------------------------------------

TEST(SrvServicePin, PinnedVersionsServeSideBySide) {
  TempDir dir("pin");
  ModelRegistry registry(dir.path());
  const ModelBundle v1 = srv_bundle("m", 7);
  const ModelBundle v2 = srv_bundle("m", 8);
  ASSERT_TRUE(registry.put(v1));
  ASSERT_TRUE(registry.put(v2));
  EstimatorService service(dir.path());
  const std::vector<std::vector<double>> rows = {srv_row(21), srv_row(22)};
  const auto got1 = service.predict_rows("m", rows, 1);
  const auto got2 = service.predict_rows("m", rows, 2);
  ASSERT_TRUE(got1);
  ASSERT_TRUE(got2);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ((*got1)[i], v1.estimator.predict_row(rows[i]));
    EXPECT_EQ((*got2)[i], v2.estimator.predict_row(rows[i]));
  }
  // Different training data must actually disagree, or the reload tests
  // above this layer prove nothing.
  EXPECT_NE((*got1)[0], (*got2)[0]);
  // Unpinned still resolves the newest version.
  const auto newest = service.predict_rows("m", rows);
  ASSERT_TRUE(newest);
  EXPECT_EQ((*newest)[0], (*got2)[0]);
}

TEST(SrvServicePin, MissingPinnedVersionIsNulloptNeverFallback) {
  TempDir dir("pinmiss");
  ModelRegistry registry(dir.path());
  ASSERT_TRUE(registry.put(srv_bundle("m", 7)));
  ServiceOptions options;
  options.fallback_cf = 1.5;  // must NOT leak into the pinned path
  EstimatorService service(dir.path(), options);
  EXPECT_FALSE(service.predict_rows("m", {srv_row(1)}, 99));
  EXPECT_FALSE(service.bundle("m", 99));
  EXPECT_TRUE(service.predict_rows("m", {srv_row(1)}, 1));
}

TEST(SrvServicePin, SnapshotCarriesLatencyHistogram) {
  TempDir dir("snap");
  ModelRegistry registry(dir.path());
  ASSERT_TRUE(registry.put(srv_bundle("m", 7)));
  EstimatorService service(dir.path());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(service.predict_rows("m", {srv_row(i)}));
  }
  const ServiceStats stats = service.snapshot();
  EXPECT_EQ(stats.requests, 5u);
  EXPECT_EQ(stats.latency.total, 5u);
  EXPECT_GT(stats.latency.quantile_max(0.99), 0u);
}

// -- server integration (protocol over a socketpair) ------------------------

TEST(SrvServer, OptionValidationFailsFast) {
  ServerOptions options;  // neither socket nor stdio
  EXPECT_TRUE(server_options_error(options));
  options.stdio = true;
  EXPECT_FALSE(server_options_error(options));
  options.socket_path = "/tmp/x.sock";  // both: ambiguous
  EXPECT_TRUE(server_options_error(options));
  options.socket_path.clear();
  options.coalesce.queue_capacity = 4;
  options.coalesce.max_batch = 64;  // capacity < one batch
  EXPECT_TRUE(server_options_error(options));
}

TEST(SrvServer, AnswersTheProtocolEndToEnd) {
  TempDir dir("e2e");
  ModelRegistry registry(dir.path());
  const ModelBundle v1 = srv_bundle("m", 7);
  ASSERT_TRUE(registry.put(v1));
  EstimatorServer server(fast_server_options(dir.path()));
  Conn conn(server);
  EXPECT_EQ(conn.transact("PING\n"), "OK pong");
  const std::vector<double> row = srv_row(33);
  // The response must be the exact shortest-round-trip rendering of the
  // direct in-process prediction: coalescing is invisible in the bytes.
  EXPECT_EQ(conn.transact(estimate_line("c1", "m", row)),
            "OK " + format_double(v1.estimator.predict_row(row)));
  EXPECT_EQ(conn.transact("ESTIMATE c1 m 1 2\n"),
            "ERR 400 expected " +
                std::to_string(feature_names(FeatureSet::Classical).size()) +
                " features for 'm'");
  EXPECT_EQ(conn.transact("ESTIMATE c1 ghost 1\n"),
            "ERR 404 no usable bundle for 'ghost'");
  EXPECT_EQ(conn.transact("NOPE\n"), "ERR 400 unknown verb 'NOPE'");
  const std::string info = conn.transact("INFO m\n");
  EXPECT_NE(info.find("OK model=m stable=v1 canary=none"), std::string::npos);
  // STATS renders at settle time, so it reflects the 6 requests before it
  // on this very pipeline (PING + INFO settle as ok alongside the good
  // ESTIMATE).
  const std::string stats = conn.transact("STATS\n");
  EXPECT_NE(stats.find("requests=6"), std::string::npos) << stats;
  EXPECT_NE(stats.find("ok=3"), std::string::npos) << stats;
  conn.finish();
  const ServerStats server_stats = server.stats();
  EXPECT_EQ(server_stats.requests, 7u);
  EXPECT_EQ(server_stats.err_bad_request, 2u);
  EXPECT_EQ(server_stats.err_no_model, 1u);
  EXPECT_EQ(server_stats.request_ns.total, 3u);  // ESTIMATEs only
}

TEST(SrvServer, OverQuotaClientsAreShedWith429) {
  TempDir dir("quota");
  ModelRegistry registry(dir.path());
  ASSERT_TRUE(registry.put(srv_bundle("m", 7)));
  ServerOptions options = fast_server_options(dir.path());
  options.quota.rate_per_second = 0.001;  // effectively no refill in-test
  options.quota.burst = 2.0;
  EstimatorServer server(options);
  Conn conn(server);
  const std::string line = estimate_line("greedy", "m", srv_row(1));
  EXPECT_EQ(conn.transact(line).rfind("OK ", 0), 0u);
  EXPECT_EQ(conn.transact(line).rfind("OK ", 0), 0u);
  EXPECT_EQ(conn.transact(line), "ERR 429 client 'greedy' over quota");
  // Another tenant is untouched by the greedy one's empty bucket.
  EXPECT_EQ(conn.transact(estimate_line("modest", "m", srv_row(1)))
                .rfind("OK ", 0),
            0u);
  conn.finish();
  EXPECT_EQ(server.stats().err_over_quota, 1u);
}

TEST(SrvServer, HotReloadUnderTrafficServesOldOrNewNeverTorn) {
  // Satellite: ModelRegistry::put a newer bundle while requests are in
  // flight. Every response must be bit-exact from either v1 or v2 -- a torn
  // read would show up as any other byte string -- and after a reload scan
  // the stream must settle on v2.
  TempDir dir("reload");
  ModelRegistry registry(dir.path());
  const ModelBundle v1 = srv_bundle("m", 7);
  ASSERT_TRUE(registry.put(v1));
  ServerOptions options = fast_server_options(dir.path());
  options.reload_poll_seconds = 1e4;  // reloads happen only via reload_now
  EstimatorServer server(options);
  Conn conn(server);
  const std::vector<double> row = srv_row(42);
  const std::string want_v1 = "OK " + format_double(v1.estimator.predict_row(row));
  EXPECT_EQ(conn.transact(estimate_line("c", "m", row)), want_v1);

  const ModelBundle v2 = srv_bundle("m", 8);
  const std::string want_v2 = "OK " + format_double(v2.estimator.predict_row(row));
  ASSERT_NE(want_v1, want_v2);

  std::atomic<bool> put_done{false};
  std::thread writer([&] {
    ASSERT_TRUE(registry.put(v2));
    put_done.store(true);
    server.reload_now();
  });
  // Traffic while the put + reload land: nothing but the two exact strings
  // may ever come back (in-flight rows finish on whichever immutable
  // bundle they were routed to).
  bool saw_v2 = false;
  for (int i = 0; i < 200; ++i) {
    const std::string response = conn.transact(estimate_line("c", "m", row));
    ASSERT_TRUE(response == want_v1 || response == want_v2) << response;
    if (response == want_v2) saw_v2 = true;
    if (saw_v2 && put_done.load()) break;
  }
  writer.join();
  server.reload_now();
  EXPECT_EQ(conn.transact(estimate_line("c", "m", row)), want_v2);
  conn.finish();
  EXPECT_EQ(server.canary_status("m").stable_version, 2);
}

TEST(SrvServer, CorruptCanaryRollsBackWithoutClientErrors) {
  TempDir dir("rollback");
  ModelRegistry registry(dir.path());
  const ModelBundle v1 = srv_bundle("m", 7);
  ASSERT_TRUE(registry.put(v1));
  ServerOptions options = fast_server_options(dir.path());
  options.reload_poll_seconds = 1e4;
  options.canary.percent = 100;
  options.canary.fail_threshold = 2;
  EstimatorServer server(options);
  Conn conn(server);
  const std::vector<double> row = srv_row(5);
  const std::string want_v1 = "OK " + format_double(v1.estimator.predict_row(row));
  EXPECT_EQ(conn.transact(estimate_line("c", "m", row)), want_v1);
  // Drop a poisoned v2 into the registry: it never loads, so the load
  // breaker must roll it back after fail_threshold scans -- no client ever
  // sees an error.
  {
    std::ofstream poison(dir.path() + "/m-v2.mfb", std::ios::binary);
    poison << "macroflow-model-bundle 1\nthis is not a bundle\n";
  }
  server.reload_now();
  EXPECT_EQ(conn.transact(estimate_line("c", "m", row)), want_v1);
  server.reload_now();
  const CanaryStatus status = server.canary_status("m");
  EXPECT_EQ(status.stable_version, 1);
  EXPECT_EQ(status.canary_version, 0);
  EXPECT_EQ(status.rollbacks, 1u);
  // Condemned: further scans must not resurrect it.
  server.reload_now();
  EXPECT_EQ(server.canary_status("m").rollbacks, 1u);
  EXPECT_EQ(conn.transact(estimate_line("c", "m", row)), want_v1);
  conn.finish();
  EXPECT_EQ(server.stats().err_no_model, 0u);
  EXPECT_EQ(server.stats().err_internal, 0u);
}

TEST(SrvServer, CanaryServesPercentAndPromotes) {
  TempDir dir("promote");
  ModelRegistry registry(dir.path());
  const ModelBundle v1 = srv_bundle("m", 7);
  const ModelBundle v2 = srv_bundle("m", 8);
  ASSERT_TRUE(registry.put(v1));
  ServerOptions options = fast_server_options(dir.path());
  options.reload_poll_seconds = 1e4;
  options.canary.percent = 100;
  options.canary.promote_after = 3;
  EstimatorServer server(options);
  Conn conn(server);
  const std::vector<double> row = srv_row(9);
  const std::string want_v1 = "OK " + format_double(v1.estimator.predict_row(row));
  const std::string want_v2 = "OK " + format_double(v2.estimator.predict_row(row));
  EXPECT_EQ(conn.transact(estimate_line("c", "m", row)), want_v1);
  ASSERT_TRUE(registry.put(v2));
  server.reload_now();
  EXPECT_EQ(server.canary_status("m").canary_version, 2);
  // percent=100 routes every client to the canary; three successes promote.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(conn.transact(estimate_line("c", "m", row)), want_v2);
  }
  const CanaryStatus status = server.canary_status("m");
  EXPECT_EQ(status.stable_version, 2);
  EXPECT_EQ(status.canary_version, 0);
  EXPECT_EQ(status.promotions, 1u);
  conn.finish();
}

}  // namespace
}  // namespace mf
