#include <gtest/gtest.h>

#include "fabric/catalog.hpp"
#include "netlist/builder.hpp"
#include "place/detailed_placer.hpp"
#include "place/quick_placer.hpp"
#include "route/routability.hpp"
#include "rtlgen/generators.hpp"
#include "synth/optimize.hpp"
#include "timing/sta.hpp"

namespace mf {
namespace {

TEST(Routability, EmptyPlacementIsRoutable) {
  Netlist nl;
  Placement placement;
  const RouteEstimate e =
      estimate_routability(nl, placement, PBlock{0, 9, 0, 9}, {});
  EXPECT_TRUE(e.routable);
  EXPECT_EQ(e.peak, 0.0);
}

TEST(Routability, DemandAccumulatesOnNets) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId in = b.input();
  const NetId l1 = b.lut({in});
  const NetId l2 = b.lut({l1});
  nl.mark_output(l2);
  Placement placement(nl.num_cells());
  placement[0] = {2, 2};
  placement[1] = {5, 5};
  const RouteEstimate e =
      estimate_routability(nl, placement, PBlock{0, 9, 0, 9}, {});
  EXPECT_GT(e.mean, 0.0);
}

TEST(Routability, FanoutEscapeMakesHotspot) {
  RoutabilityOptions opts;
  auto build = [&](int fanout) {
    Netlist nl;
    NetlistBuilder b(nl);
    const NetId src = b.lut({b.input()});
    for (int i = 0; i < fanout; ++i) nl.mark_output(b.lut({src}));
    Placement placement(nl.num_cells());
    // Driver centre, sinks spread.
    placement[0] = {5, 5};
    for (std::size_t i = 1; i < placement.size(); ++i) {
      placement[i] = {static_cast<std::int16_t>(i % 10),
                      static_cast<std::int16_t>((i / 10) % 10)};
    }
    return estimate_routability(nl, placement, PBlock{0, 9, 0, 9}, opts).peak;
  };
  EXPECT_GT(build(64), build(4));
}

TEST(Routability, ControlBroadcastAddsDemand) {
  RoutabilityOptions with;
  RoutabilityOptions without = with;
  without.control_scale = 0.0;

  Netlist nl;
  NetlistBuilder b(nl);
  const ControlSetId cs = b.control_set(b.input("rst"), b.input("en"));
  for (int i = 0; i < 64; ++i) b.ff(b.input(), cs);
  Placement placement(nl.num_cells());
  for (std::size_t i = 0; i < placement.size(); ++i) {
    placement[i] = {static_cast<std::int16_t>(i % 8),
                    static_cast<std::int16_t>(i / 8)};
  }
  const double peak_with =
      estimate_routability(nl, placement, PBlock{0, 7, 0, 7}, with).mean;
  const double peak_without =
      estimate_routability(nl, placement, PBlock{0, 7, 0, 7}, without).mean;
  EXPECT_GT(peak_with, peak_without);
}

TEST(Routability, CongestionAtLookup) {
  RouteEstimate e;
  e.grid_w = 2;
  e.grid_h = 2;
  e.col0 = 10;
  e.row0 = 20;
  e.demand = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(e.congestion_at(10, 20, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(e.congestion_at(11, 21, 2.0), 2.0);
  // Clamped outside.
  EXPECT_DOUBLE_EQ(e.congestion_at(0, 0, 2.0), 0.5);
}

// -- timing -----------------------------------------------------------------

TEST(Timing, PathGrowsWithLogicDepth) {
  TimingOptions opts;
  auto longest = [&](int depth) {
    Netlist nl;
    NetlistBuilder b(nl);
    NetId n = b.input();
    for (int i = 0; i < depth; ++i) n = b.lut({n});
    nl.mark_output(n);
    Placement placement(nl.num_cells());
    for (std::size_t i = 0; i < placement.size(); ++i) {
      placement[i] = {static_cast<std::int16_t>(i), 0};
    }
    return analyze_timing(nl, placement, {}, 0.0, opts).longest_path_ns;
  };
  EXPECT_GT(longest(8), longest(2));
}

TEST(Timing, WireDistanceMatters) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId l1 = b.lut({b.input()});
  const NetId l2 = b.lut({l1});
  nl.mark_output(l2);

  Placement near(nl.num_cells());
  near[0] = {0, 0};
  near[1] = {1, 0};
  Placement far = near;
  far[1] = {60, 60};
  const double t_near = analyze_timing(nl, near, {}, 0.0, {}).longest_path_ns;
  const double t_far = analyze_timing(nl, far, {}, 0.0, {}).longest_path_ns;
  EXPECT_GT(t_far, t_near + 0.3);
}

TEST(Timing, RegisterToRegisterPath) {
  Netlist nl;
  NetlistBuilder b(nl);
  const ControlSetId cs = b.control_set();
  const NetId q = b.ff(b.input(), cs);
  const NetId l = b.lut({q});
  const NetId q2 = b.ff(l, cs);
  nl.mark_output(q2);
  Placement placement(nl.num_cells(), CellPlacement{0, 0});
  const TimingResult t = analyze_timing(nl, placement, {}, 0.0, {});
  TimingOptions opts;
  // clk->Q + wire + LUT + wire + setup.
  EXPECT_GT(t.longest_path_ns, opts.clk_to_q + opts.lut_delay + opts.setup);
  EXPECT_LT(t.longest_path_ns, 3.0);
}

TEST(Timing, CongestionSlowsWires) {
  // The Table I inversion: the same placement with a congested grid yields
  // a longer critical path.
  Netlist nl;
  NetlistBuilder b(nl);
  NetId n = b.input();
  for (int i = 0; i < 6; ++i) n = b.lut({n});
  nl.mark_output(n);
  Placement placement(nl.num_cells());
  for (std::size_t i = 0; i < placement.size(); ++i) {
    placement[i] = {static_cast<std::int16_t>(i * 3), 0};
  }
  RouteEstimate congested;
  congested.grid_w = 30;
  congested.grid_h = 1;
  congested.demand.assign(30, 20.0);  // demand 20 vs capacity 10 => ratio 2

  const double clean = analyze_timing(nl, placement, {}, 0.0, {}).longest_path_ns;
  const double hot =
      analyze_timing(nl, placement, congested, 10.0, {}).longest_path_ns;
  EXPECT_GT(hot, clean * 1.5);
}

TEST(Timing, CriticalPathTracesThroughTheChain) {
  Netlist nl;
  NetlistBuilder b(nl);
  NetId n = b.input("start");
  std::vector<NetId> chain{n};
  for (int i = 0; i < 4; ++i) {
    n = b.lut({n});
    chain.push_back(n);
  }
  nl.mark_output(n);
  Placement placement(nl.num_cells());
  for (std::size_t i = 0; i < placement.size(); ++i) {
    placement[i] = {static_cast<std::int16_t>(i), 0};
  }
  const TimingResult t = analyze_timing(nl, placement, {}, 0.0, {});
  ASSERT_EQ(t.critical_path.size(), chain.size());
  for (std::size_t i = 0; i < chain.size(); ++i) {
    EXPECT_EQ(t.critical_path[i], chain[i]);
  }
  EXPECT_EQ(t.critical_endpoint, chain.back());
}

TEST(Timing, ReportMentionsStagesAndLocations) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId x = b.input("x");
  const NetId y = b.lut({x});
  nl.mark_output(y);
  Placement placement(nl.num_cells(), CellPlacement{7, 9});
  const TimingResult t = analyze_timing(nl, placement, {}, 0.0, {});
  const std::string report = format_timing_report(nl, placement, t);
  EXPECT_NE(report.find("critical path: 2 stages"), std::string::npos);
  EXPECT_NE(report.find("<input>"), std::string::npos);
  EXPECT_NE(report.find("LUT @(7,9)"), std::string::npos);
  EXPECT_NE(report.find("'x'"), std::string::npos);
}

TEST(Timing, TightPBlockSlowerThanLoose) {
  // End to end: place the same module in a tight and a loose PBlock; the
  // tight one uses fewer slices but has the longer critical path.
  const Device dev = xc7z020_model();
  Rng rng(3);
  MixedParams params;
  params.luts = 500;
  params.ffs = 400;
  params.carry_adders = 2;
  params.control_sets = 3;
  Module module = gen_mixed(params, rng);
  optimize(module.netlist);
  const ResourceReport report = make_report(module.netlist);

  // Paper regime: the loose PBlock is ~1.5x the tight one (CF 1.5 vs 1.0),
  // where congestion relief outweighs the slightly longer wires.
  DetailedPlaceOptions opts;
  const PlaceResult tight =
      place_in_pblock(module, report, dev, PBlock{0, 13, 0, 12}, opts);
  const PlaceResult loose =
      place_in_pblock(module, report, dev, PBlock{0, 16, 0, 15}, opts);
  ASSERT_TRUE(tight.feasible) << tight.fail_reason;
  ASSERT_TRUE(loose.feasible);
  const double t_tight =
      analyze_timing(module.netlist, tight.placement, tight.route,
                     opts.route.cell_capacity)
          .longest_path_ns;
  const double t_loose =
      analyze_timing(module.netlist, loose.placement, loose.route,
                     opts.route.cell_capacity)
          .longest_path_ns;
  EXPECT_LT(tight.used_slices, loose.used_slices);
  EXPECT_GT(t_tight, t_loose);
}

}  // namespace
}  // namespace mf
