// The incremental stitcher engine's exactness contract, pinned three ways:
//
//   1. golden traces: the default engine at restarts = 1 must reproduce the
//      PRE-incremental stitcher's results bit for bit (counters, bit_cast'd
//      final doubles, position and cost-trace hashes captured from the old
//      code before the rewrite);
//   2. differential: the shipped reference engine (reference_engine = true,
//      the old naive code kept alive) and the incremental engine must agree
//      bitwise on every seed;
//   3. properties: the IncrementalWirelength cache never drifts from a
//      from-scratch recompute under 10k random place / move / unplace ops.
//
// Plus the multi-start determinism contract: restarts = K is bit-identical
// at any `jobs` value, the winner is the argmin over the per-restart
// task_seed runs (lowest index on ties), and restarts = 1 is the plain
// single anneal.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "fabric/catalog.hpp"
#include "stitch/incremental_cost.hpp"
#include "stitch/sa_stitcher.hpp"

namespace mf {
namespace {

/// Same mixed problem as test_stitch_properties: three macro shapes, one
/// BRAM-bound, 36 instances in a chain. The golden rows below are tied to
/// this exact problem -- do not reshape it.
StitchProblem mixed_problem(const Device& dev) {
  StitchProblem problem;
  auto add_macro = [&](const char* name, int col0, int w, int h, bool hard) {
    Macro m;
    m.name = name;
    m.pblock = PBlock{col0, col0 + w - 1, 0, h - 1};
    m.footprint = footprint_of(dev, m.pblock, hard);
    m.used_slices = w * h;
    problem.macros.push_back(std::move(m));
  };
  add_macro("small", 0, 3, 8, false);
  add_macro("wide", 3, 9, 12, false);
  int bram_col = -1;
  for (int c = 0; c < dev.num_columns(); ++c) {
    if (dev.column(c) == ColumnKind::Bram) {
      bram_col = c;
      break;
    }
  }
  add_macro("brammy", bram_col - 1, 3, 10, true);

  int next = 0;
  auto instances = [&](int macro, int count) {
    for (int i = 0; i < count; ++i) {
      problem.instances.push_back(
          BlockInstance{"i" + std::to_string(next++), macro});
    }
  };
  instances(0, 20);
  instances(1, 10);
  instances(2, 6);
  for (int i = 0; i + 1 < next; ++i) {
    problem.nets.push_back(BlockNet{{i, i + 1}, 1.0});
  }
  return problem;
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 0x100000001b3ULL;
  return h;
}

std::uint64_t positions_hash(const StitchResult& r) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const BlockPlacement& p : r.positions) {
    h = mix(h, static_cast<std::uint64_t>(p.col));
    h = mix(h, static_cast<std::uint64_t>(p.row));
  }
  return h;
}

std::uint64_t trace_hash(const StitchResult& r) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& [move, cost] : r.cost_trace) {
    h = mix(h, static_cast<std::uint64_t>(move));
    h = mix(h, std::bit_cast<std::uint64_t>(cost));
  }
  return h;
}

StitchOptions golden_opts(std::uint64_t seed) {
  StitchOptions opts;
  opts.seed = seed;
  opts.moves_per_temp = 150;
  opts.cooling = 0.85;
  return opts;
}

void expect_identical(const StitchResult& a, const StitchResult& b) {
  EXPECT_EQ(a.total_moves, b.total_moves);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.illegal, b.illegal);
  EXPECT_EQ(a.unplaced, b.unplaced);
  EXPECT_EQ(a.converge_move, b.converge_move);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.wirelength),
            std::bit_cast<std::uint64_t>(b.wirelength));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.cost),
            std::bit_cast<std::uint64_t>(b.cost));
  EXPECT_EQ(positions_hash(a), positions_hash(b));
  EXPECT_EQ(trace_hash(a), trace_hash(b));
}

/// One pinned pre-change run: every field the old engine produced for
/// (mixed_problem, golden_opts(seed)), captured before the rewrite.
struct GoldenRow {
  std::uint64_t seed;
  long total_moves, accepted, rejected, illegal;
  int unplaced;
  long converge_move;
  std::uint64_t wirelength_bits, cost_bits, positions_hash, trace_hash;
};

constexpr GoldenRow kGolden[] = {
    {1ull, 8550, 273, 4673, 3571, 0, 6900, 0x4084100000000000ull,
     0x4084100000000000ull, 0x951f887e78dcc37dull, 0xec6c069e6130f303ull},
    {2ull, 7500, 272, 3973, 3235, 0, 5250, 0x4083000000000000ull,
     0x4083000000000000ull, 0x782d59339c4f41b6ull, 0xfa0c9f5680e004b7ull},
    {3ull, 6150, 292, 3076, 2762, 0, 3750, 0x4083e00000000000ull,
     0x4083e00000000000ull, 0xcea142ba32a847dbull, 0xdc1cc13a53bc3fe3ull},
    {4ull, 2250, 229, 1067, 950, 0, 0, 0x4088300000000000ull,
     0x4088300000000000ull, 0x949cf05a4da2f262ull, 0x8e0f1a8d127b74c5ull},
};

TEST(StitchIncremental, GoldenTracesMatchPreChangeEngine) {
  const Device dev = xc7z020_model();
  const StitchProblem problem = mixed_problem(dev);
  for (const GoldenRow& g : kGolden) {
    const StitchResult r = stitch(dev, problem, golden_opts(g.seed));
    EXPECT_EQ(r.total_moves, g.total_moves) << "seed " << g.seed;
    EXPECT_EQ(r.accepted, g.accepted) << "seed " << g.seed;
    EXPECT_EQ(r.rejected, g.rejected) << "seed " << g.seed;
    EXPECT_EQ(r.illegal, g.illegal) << "seed " << g.seed;
    EXPECT_EQ(r.unplaced, g.unplaced) << "seed " << g.seed;
    EXPECT_EQ(r.converge_move, g.converge_move) << "seed " << g.seed;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(r.wirelength), g.wirelength_bits)
        << "seed " << g.seed;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(r.cost), g.cost_bits)
        << "seed " << g.seed;
    EXPECT_EQ(positions_hash(r), g.positions_hash) << "seed " << g.seed;
    EXPECT_EQ(trace_hash(r), g.trace_hash) << "seed " << g.seed;
  }
}

TEST(StitchIncremental, ReferenceEngineBitIdentical) {
  const Device dev = xc7z020_model();
  const StitchProblem problem = mixed_problem(dev);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    StitchOptions inc = golden_opts(seed);
    StitchOptions ref = golden_opts(seed);
    ref.reference_engine = true;
    const StitchResult a = stitch(dev, problem, inc);
    const StitchResult b = stitch(dev, problem, ref);
    expect_identical(a, b);
  }
}

TEST(StitchIncremental, WirelengthCacheNeverDrifts) {
  const Device dev = xc7z020_model();
  const StitchProblem problem = mixed_problem(dev);
  const int n = static_cast<int>(problem.instances.size());
  for (std::uint64_t seed : {7ull, 19ull, 101ull}) {
    IncrementalWirelength engine(problem);
    Rng rng(seed);
    for (int op = 0; op < 10000; ++op) {
      const int inst = static_cast<int>(rng.index(static_cast<std::size_t>(n)));
      // 1/4 unplace, 3/4 place-or-move at a random (legal or not -- the
      // engine's geometry never consults occupancy) anchor.
      if (rng.index(4) == 0) {
        engine.unplace(inst);
      } else {
        const int col = static_cast<int>(rng.index(100));
        const int row = static_cast<int>(rng.index(140));
        engine.place(inst, col, row);
      }
      if (op % 97 == 0 || op > 9900) {
        ASSERT_NEAR(engine.total(), engine.full_recompute(), 1e-9)
            << "seed " << seed << " op " << op;
      }
    }
    EXPECT_NEAR(engine.total(), engine.full_recompute(), 1e-9);
    EXPECT_GT(engine.rescans(), 0) << "property run never hit the rescan path";
  }
}

TEST(StitchIncremental, MultiStartIdenticalAtAnyJobs) {
  const Device dev = xc7z020_model();
  const StitchProblem problem = mixed_problem(dev);
  StitchOptions opts = golden_opts(5);
  opts.restarts = 8;
  opts.jobs = 1;
  const StitchResult sequential = stitch(dev, problem, opts);
  opts.jobs = 8;
  const StitchResult parallel = stitch(dev, problem, opts);
  expect_identical(sequential, parallel);
  EXPECT_EQ(sequential.restart_index, parallel.restart_index);
  EXPECT_EQ(sequential.restart_moves, parallel.restart_moves);
}

TEST(StitchIncremental, MultiStartWinnerIsArgminOverTaskSeeds) {
  const Device dev = xc7z020_model();
  const StitchProblem problem = mixed_problem(dev);
  StitchOptions opts = golden_opts(5);
  opts.restarts = 8;
  const StitchResult multi = stitch(dev, problem, opts);

  int best = -1;
  double best_cost = 0.0;
  long all_moves = 0;
  for (int k = 0; k < 8; ++k) {
    StitchOptions one = golden_opts(5);
    one.seed = task_seed(opts.seed, "restart:" + std::to_string(k));
    const StitchResult r = stitch(dev, problem, one);
    all_moves += r.total_moves;
    if (best < 0 || r.cost < best_cost) {  // strict <: ties keep lowest k
      best = k;
      best_cost = r.cost;
    }
  }
  EXPECT_EQ(multi.restart_index, best);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(multi.cost),
            std::bit_cast<std::uint64_t>(best_cost));
  EXPECT_EQ(multi.restart_moves, all_moves);
}

TEST(StitchIncremental, SingleRestartIsThePlainAnneal) {
  const Device dev = xc7z020_model();
  const StitchProblem problem = mixed_problem(dev);
  StitchOptions multi = golden_opts(3);
  multi.restarts = 1;
  multi.jobs = 8;  // must not matter at restarts = 1
  const StitchResult a = stitch(dev, problem, multi);
  const StitchResult b = stitch(dev, problem, golden_opts(3));
  expect_identical(a, b);
  EXPECT_EQ(a.restart_index, 0);
  EXPECT_EQ(a.restart_moves, a.total_moves);
}

TEST(StitchIncremental, CostTraceIsCapped) {
  const Device dev = xc7z020_model();
  const StitchProblem problem = mixed_problem(dev);
  StitchOptions opts = golden_opts(1);
  // Pathological schedule: ~9200 temperature steps of one move each, with
  // quiescence detection off so the walk really takes them all.
  opts.moves_per_temp = 1;
  opts.cooling = 0.999;
  opts.stagnation_temps = 0;
  const StitchResult r = stitch(dev, problem, opts);
  EXPECT_GT(r.total_moves, 4096);
  EXPECT_LE(r.cost_trace.size(), 4096u);
  EXPECT_GE(r.cost_trace.size(), 1024u);  // downsampled, not truncated
  for (std::size_t i = 1; i < r.cost_trace.size(); ++i) {
    EXPECT_LT(r.cost_trace[i - 1].first, r.cost_trace[i].first);
  }
}

}  // namespace
}  // namespace mf
