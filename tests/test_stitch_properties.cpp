// Property tests over the SA stitcher: for any seed, the result must be
// overlap-free, anchor-legal, correctly costed, and reproducible.

#include <gtest/gtest.h>

#include "fabric/catalog.hpp"
#include "stitch/sa_stitcher.hpp"

namespace mf {
namespace {

/// A mixed problem: three macro shapes, one of them BRAM-bound.
StitchProblem mixed_problem(const Device& dev) {
  StitchProblem problem;
  auto add_macro = [&](const char* name, int col0, int w, int h, bool hard) {
    Macro m;
    m.name = name;
    m.pblock = PBlock{col0, col0 + w - 1, 0, h - 1};
    m.footprint = footprint_of(dev, m.pblock, hard);
    m.used_slices = w * h;
    problem.macros.push_back(std::move(m));
  };
  add_macro("small", 0, 3, 8, false);
  add_macro("wide", 3, 9, 12, false);
  int bram_col = -1;
  for (int c = 0; c < dev.num_columns(); ++c) {
    if (dev.column(c) == ColumnKind::Bram) {
      bram_col = c;
      break;
    }
  }
  add_macro("brammy", bram_col - 1, 3, 10, true);

  int next = 0;
  auto instances = [&](int macro, int count) {
    for (int i = 0; i < count; ++i) {
      problem.instances.push_back(
          BlockInstance{"i" + std::to_string(next++), macro});
    }
  };
  instances(0, 20);
  instances(1, 10);
  instances(2, 6);
  for (int i = 0; i + 1 < next; ++i) {
    problem.nets.push_back(BlockNet{{i, i + 1}, 1.0});
  }
  return problem;
}

class StitchProperty : public ::testing::TestWithParam<int> {};

TEST_P(StitchProperty, ResultIsLegal) {
  const Device dev = xc7z020_model();
  const StitchProblem problem = mixed_problem(dev);
  StitchOptions opts;
  opts.seed = static_cast<std::uint64_t>(GetParam()) + 1;
  opts.moves_per_temp = 150;
  opts.cooling = 0.85;
  const StitchResult r = stitch(dev, problem, opts);

  // Overlap-free.
  std::vector<int> grid(
      static_cast<std::size_t>(dev.num_columns()) *
          static_cast<std::size_t>(dev.rows()),
      -1);
  int placed = 0;
  for (std::size_t i = 0; i < r.positions.size(); ++i) {
    const BlockPlacement& p = r.positions[i];
    if (!p.placed()) continue;
    ++placed;
    const Macro& macro = problem.macros[static_cast<std::size_t>(
        problem.instances[i].macro)];
    ASSERT_TRUE(footprint_fits(dev, macro.footprint, p.col, p.row,
                               macro.pblock.row_lo))
        << "illegal anchor for " << problem.instances[i].name;
    for (int c = p.col; c < p.col + macro.footprint.width(); ++c) {
      for (int row = p.row; row < p.row + macro.footprint.height; ++row) {
        auto& cell = grid[static_cast<std::size_t>(c) *
                              static_cast<std::size_t>(dev.rows()) +
                          static_cast<std::size_t>(row)];
        ASSERT_EQ(cell, -1) << "overlap";
        cell = static_cast<int>(i);
      }
    }
  }
  EXPECT_EQ(placed + r.unplaced,
            static_cast<int>(problem.instances.size()));

  // Cost accounting: cost == wirelength + penalty * unplaced, with the
  // default penalty 4 * (cols + rows).
  const double penalty = 4.0 * (dev.num_columns() + dev.rows());
  EXPECT_NEAR(r.cost, r.wirelength + penalty * r.unplaced, 1e-6);
  EXPECT_GE(r.wirelength, 0.0);
}

TEST_P(StitchProperty, ReproduciblePerSeed) {
  const Device dev = xc7z020_model();
  const StitchProblem problem = mixed_problem(dev);
  StitchOptions opts;
  opts.seed = static_cast<std::uint64_t>(GetParam()) + 1;
  opts.moves_per_temp = 150;
  opts.cooling = 0.85;
  const StitchResult a = stitch(dev, problem, opts);
  const StitchResult b = stitch(dev, problem, opts);
  ASSERT_EQ(a.positions.size(), b.positions.size());
  for (std::size_t i = 0; i < a.positions.size(); ++i) {
    EXPECT_EQ(a.positions[i].col, b.positions[i].col);
    EXPECT_EQ(a.positions[i].row, b.positions[i].row);
  }
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.total_moves, b.total_moves);
}

TEST_P(StitchProperty, TraceEndsAtFinalCostScale) {
  const Device dev = xc7z020_model();
  const StitchProblem problem = mixed_problem(dev);
  StitchOptions opts;
  opts.seed = static_cast<std::uint64_t>(GetParam()) + 1;
  opts.moves_per_temp = 150;
  opts.cooling = 0.85;
  const StitchResult r = stitch(dev, problem, opts);
  ASSERT_FALSE(r.cost_trace.empty());
  // The annealer's running cost and the recomputed final cost must agree to
  // within the final-fill improvements (fill only ever lowers the cost).
  EXPECT_LE(r.cost, r.cost_trace.back().second + 1e-6);
  EXPECT_LE(r.converge_move, r.total_moves);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StitchProperty, ::testing::Range(0, 5));

}  // namespace
}  // namespace mf
