// Multi-process DSE farm: manifest determinism, shard merge semantics, and
// the supervisor's self-healing story (crash respawn, hang detection, poison
// quarantine, cancellation, resume) -- all asserted against the headline
// guarantee that the merged dataset is byte-identical to a single-process
// run no matter what was injected along the way.
//
// The farm suites spawn real worker processes by re-executing this test
// binary (tests/test_main.cpp answers --farm-worker before gtest runs), so
// every scenario here exercises genuine fork/exec/waitpid supervision, not
// an in-process simulation.

#include <gtest/gtest.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/cancel.hpp"
#include "fabric/catalog.hpp"
#include "farm/chaos.hpp"
#include "farm/manifest.hpp"
#include "farm/supervisor.hpp"
#include "farm/worker.hpp"
#include "flow/ground_truth.hpp"
#include "flow/serialize.hpp"

namespace {

using namespace mf;
namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_((fs::temp_directory_path() /
               ("mf_farm_" + tag + "_" + std::to_string(::getpid())))
                  .string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (fs::path(path_) / name).string();
  }

 private:
  std::string path_;
};

int test_jobs() {
  const char* env = std::getenv("MF_TEST_JOBS");
  return env != nullptr ? std::atoi(env) : 1;
}

/// The small plan every farm scenario runs: tiny modules, a few shards, a
/// chunk size that forces several checkpoints per shard.
FarmPlan small_plan() {
  FarmPlan plan;
  plan.count = 12;
  plan.seed = 42;
  plan.grid = {0.9};
  plan.shards_per_grid = 3;
  plan.checkpoint_every = 2;
  plan.worker_jobs = test_jobs();
  return plan;
}

FarmOptions farm_options(const TempDir& dir, const FarmPlan& plan) {
  FarmOptions options;
  options.dir = dir.file("farm");
  options.plan = plan;
  options.workers = 2;
  options.quiet = true;
  options.poll_ms = 2.0;
  options.backoff_base_ms = 5.0;
  options.backoff_cap_ms = 50.0;
  return options;
}

/// What an uninterrupted single-process run would have produced, as bytes.
std::string reference_bytes(const FarmPlan& plan, double grid_value) {
  CfSearchOptions search;
  search.start = grid_value;
  const GroundTruth truth = build_ground_truth(
      dataset_sweep({plan.count, plan.seed}), xc7z020_model(), search, 1);
  return ground_truth_to_text(truth.samples);
}

std::string file_bytes(const std::string& path) {
  return read_file(path).value_or("");
}

// -- manifest ---------------------------------------------------------------

TEST(FarmManifestTest, RoundTripsThroughText) {
  FarmPlan plan = small_plan();
  plan.grid = {0.5, 0.9};
  plan.chaos.enabled = true;
  plan.chaos.p_kill = 0.25;
  plan.chaos.faults_per_shard = 3;
  const FarmManifest manifest(plan);
  const std::optional<FarmManifest> back =
      manifest_from_text(manifest_to_text(manifest));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(manifest_to_text(*back), manifest_to_text(manifest));
  EXPECT_EQ(back->total_shards(), 6);
  EXPECT_EQ(back->grid_of_shard(4), 1);
  EXPECT_EQ(back->local_shard(4), 1);
}

TEST(FarmManifestTest, RejectsTruncationAndGarbage) {
  const std::string text = manifest_to_text(FarmManifest(small_plan()));
  EXPECT_FALSE(manifest_from_text(text.substr(0, text.size() / 2)));
  EXPECT_FALSE(manifest_from_text("not a manifest\n"));
  EXPECT_FALSE(manifest_from_text(""));
}

TEST(FarmManifestTest, ShardingIsDeterministicAndTotal) {
  const FarmManifest manifest(small_plan());
  const std::vector<GenSpec> specs = manifest.specs();
  std::size_t assigned = 0;
  for (int shard = 0; shard < manifest.total_shards(); ++shard) {
    for (const std::size_t item : manifest.shard_items(shard, specs)) {
      EXPECT_EQ(manifest.shard_of_item(specs[item].name),
                manifest.local_shard(shard));
      ++assigned;
    }
  }
  // Each grid block partitions the full spec list.
  EXPECT_EQ(assigned, specs.size() * manifest.plan().grid.size());
}

TEST(FarmManifestTest, InfeasibleSidecarRoundTripsAndRejectsTruncation) {
  const std::vector<std::string> names = {"a", "b", "c"};
  const std::string text = infeasible_to_text(names);
  const auto back = infeasible_from_text(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, names);
  EXPECT_FALSE(infeasible_from_text(text.substr(0, text.size() - 4)));
}

// -- chaos ------------------------------------------------------------------

TEST(FarmChaosTest, DrawIsPureAndRespectsEligibility) {
  FarmChaosOptions opts;
  opts.enabled = true;
  opts.p_kill = 0.5;
  opts.p_hang = 0.25;
  opts.faults_per_shard = 2;
  const FarmChaos chaos(opts);
  for (int shard = 0; shard < 4; ++shard) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      for (int ordinal = 0; ordinal < 6; ++ordinal) {
        const FarmChaos::Action a = chaos.draw(shard, attempt, ordinal);
        EXPECT_EQ(a, chaos.draw(shard, attempt, ordinal));  // pure
        if (ordinal == 0) {
          EXPECT_EQ(a, FarmChaos::Action::None);  // boundary 0 never faults
        }
        if (attempt >= opts.faults_per_shard) {
          EXPECT_NE(a, FarmChaos::Action::Kill);
          EXPECT_NE(a, FarmChaos::Action::Hang);
        }
      }
    }
  }
  EXPECT_EQ(FarmChaos(FarmChaosOptions{}).draw(0, 0, 3),
            FarmChaos::Action::None);  // disabled == no faults
}

// -- merge ------------------------------------------------------------------

LabeledModule sample(const std::string& name, double cf) {
  LabeledModule s;
  s.name = name;
  s.min_cf = cf;
  return s;
}

TEST(FarmMergeTest, LowestShardIndexWinsDuplicates) {
  const std::vector<std::string> order = {"a", "b", "c"};
  std::vector<std::vector<LabeledModule>> shards(2);
  shards[0] = {sample("b", 1.0)};
  shards[1] = {sample("b", 9.0), sample("a", 2.0)};
  ShardMergeStats stats;
  const std::vector<LabeledModule> merged =
      merge_ground_truth_shards(std::move(shards), order, &stats);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].name, "a");  // global order, not arrival order
  EXPECT_EQ(merged[1].name, "b");
  EXPECT_DOUBLE_EQ(merged[1].min_cf, 1.0);  // shard 0's copy won
  EXPECT_EQ(stats.duplicates_dropped, 1);
  ASSERT_EQ(stats.warnings.size(), 1u);
  EXPECT_NE(stats.warnings[0].find("duplicate"), std::string::npos);
}

TEST(FarmMergeTest, DropsUnknownKeysWithWarning) {
  std::vector<std::vector<LabeledModule>> shards(1);
  shards[0] = {sample("ghost", 1.0), sample("a", 2.0)};
  ShardMergeStats stats;
  const std::vector<LabeledModule> merged =
      merge_ground_truth_shards(std::move(shards), {"a"}, &stats);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].name, "a");
  EXPECT_EQ(stats.unknown_dropped, 1);
}

TEST(FarmMergeTest, MissingKeysAreSkippedSilently) {
  std::vector<std::vector<LabeledModule>> shards(3);  // shard 1 "quarantined"
  shards[0] = {sample("a", 1.0)};
  shards[2] = {sample("c", 3.0)};
  ShardMergeStats stats;
  const std::vector<LabeledModule> merged =
      merge_ground_truth_shards(std::move(shards), {"a", "b", "c"}, &stats);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(stats.duplicates_dropped, 0);
  EXPECT_TRUE(stats.warnings.empty());
}

// -- the farm itself --------------------------------------------------------

TEST(FarmTest, CompletesAndMatchesSingleProcessBytes) {
  TempDir dir("complete");
  const FarmOptions options = farm_options(dir, small_plan());
  const FarmResult result = run_farm(options);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.shards_done, 3);
  EXPECT_EQ(result.spawns, 3);
  EXPECT_EQ(result.respawns, 0);
  ASSERT_EQ(result.merged_paths.size(), 1u);
  EXPECT_EQ(file_bytes(result.merged_paths[0]),
            reference_bytes(options.plan, 0.9));
}

TEST(FarmTest, MultiGridProducesOneDatasetPerGridValue) {
  TempDir dir("grid");
  FarmPlan plan = small_plan();
  plan.grid = {0.5, 0.9};
  plan.shards_per_grid = 2;
  const FarmOptions options = farm_options(dir, plan);
  const FarmResult result = run_farm(options);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.merged_paths.size(), 2u);
  EXPECT_EQ(file_bytes(result.merged_paths[0]), reference_bytes(plan, 0.5));
  EXPECT_EQ(file_bytes(result.merged_paths[1]), reference_bytes(plan, 0.9));
}

TEST(FarmTest, ResumeTrustsDoneShards) {
  TempDir dir("resume");
  const FarmOptions options = farm_options(dir, small_plan());
  ASSERT_TRUE(run_farm(options).ok);
  const FarmResult again = run_farm(options);
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_EQ(again.shards_resumed, 3);
  EXPECT_EQ(again.spawns, 0);  // nothing left to do
  EXPECT_EQ(file_bytes(again.merged_paths[0]),
            reference_bytes(options.plan, 0.9));
}

TEST(FarmTest, ChaosKillsRecoverBitIdentically) {
  TempDir dir("kills");
  FarmPlan plan = small_plan();
  plan.chaos.enabled = true;
  plan.chaos.p_kill = 1.0;        // die at every eligible chunk boundary...
  plan.chaos.faults_per_shard = 2;  // ...for the first two attempts
  FarmOptions options = farm_options(dir, plan);
  options.max_attempts = 4;
  const FarmResult result = run_farm(options);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.respawns, 0);
  EXPECT_EQ(result.shards_quarantined, 0);
  // The headline: injected SIGKILLs at checkpoint boundaries change nothing
  // about the bytes of the merged dataset.
  FarmPlan clean = small_plan();
  EXPECT_EQ(file_bytes(result.merged_paths[0]), reference_bytes(clean, 0.9));
}

TEST(FarmTest, PoisonShardIsQuarantinedAndFarmContinues) {
  TempDir dir("poison");
  FarmPlan plan = small_plan();
  plan.chaos.enabled = true;
  plan.chaos.p_kill = 1.0;  // faults_per_shard stays INT_MAX: never heals
  FarmOptions options = farm_options(dir, plan);
  options.max_attempts = 2;
  const FarmResult result = run_farm(options);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.cancelled);
  EXPECT_EQ(result.shards_quarantined, 3);
  EXPECT_EQ(result.shards_done, 0);
  // Every poisoned shard leaves a .reason trail and the merge still ran
  // (over the surviving -- here zero -- shards).
  for (int shard = 0; shard < 3; ++shard) {
    const std::string reason =
        (fs::path(farm_quarantine_dir(options.dir)) /
         (farm_shard_stem(shard) + ".reason"))
            .string();
    EXPECT_TRUE(fs::exists(reason)) << reason;
    EXPECT_NE(file_bytes(reason).find("gave up"), std::string::npos);
  }
  ASSERT_EQ(result.merged_paths.size(), 1u);
  const auto merged = load_ground_truth(result.merged_paths[0]);
  ASSERT_TRUE(merged.has_value());
  EXPECT_TRUE(merged->empty());
}

TEST(FarmTest, HungWorkerIsKilledAndRespawned) {
  TempDir dir("hang");
  FarmPlan plan = small_plan();
  plan.chaos.enabled = true;
  plan.chaos.p_hang = 1.0;
  plan.chaos.faults_per_shard = 1;  // hang once per shard, then run clean
  FarmOptions options = farm_options(dir, plan);
  options.hang_timeout_seconds = 0.4;
  options.max_attempts = 3;
  const FarmResult result = run_farm(options);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.hung_killed, 0);
  EXPECT_GT(result.respawns, 0);
  FarmPlan clean = small_plan();
  EXPECT_EQ(file_bytes(result.merged_paths[0]), reference_bytes(clean, 0.9));
}

TEST(FarmTest, DeadlineCancelsAndResumeCompletes) {
  TempDir dir("deadline");
  FarmPlan plan = small_plan();
  plan.chaos.enabled = true;
  plan.chaos.p_slow = 1.0;  // stretch the run so the deadline lands mid-farm
  plan.chaos.slow_ms = 30.0;
  CancelToken token;
  token.set_deadline_seconds(0.05);
  FarmOptions options = farm_options(dir, plan);
  options.cancel = &token;
  const FarmResult cancelled = run_farm(options);
  EXPECT_TRUE(cancelled.cancelled);
  EXPECT_FALSE(cancelled.ok);
  EXPECT_TRUE(cancelled.merged_paths.empty());  // no partial merge

  // Same directory, same plan, no deadline: picks the checkpoints up and
  // finishes with the uninterrupted bytes.
  options.cancel = nullptr;
  const FarmResult resumed = run_farm(options);
  ASSERT_TRUE(resumed.ok) << resumed.error;
  FarmPlan clean = small_plan();
  EXPECT_EQ(file_bytes(resumed.merged_paths[0]), reference_bytes(clean, 0.9));
}

TEST(FarmTest, RefusesDirectoryWithDifferentManifest) {
  TempDir dir("mismatch");
  FarmOptions options = farm_options(dir, small_plan());
  ASSERT_TRUE(run_farm(options).ok);
  options.plan.count = 13;  // a different plan over the same checkpoints
  const FarmResult result = run_farm(options);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("manifest"), std::string::npos);
}

TEST(FarmTest, RejectsBadOptions) {
  EXPECT_FALSE(run_farm(FarmOptions{}).ok);  // empty dir
  TempDir dir("badopts");
  FarmOptions options = farm_options(dir, small_plan());
  options.workers = 0;
  EXPECT_FALSE(run_farm(options).ok);
}

// -- worker argv round-trip -------------------------------------------------

TEST(FarmWorkerTest, ArgvRoundTrips) {
  FarmWorkerArgs args;
  args.dir = "/tmp/somewhere";
  args.shard = 7;
  args.attempt = 3;
  std::vector<std::string> argv_strings = farm_worker_argv(args);
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("binary"));
  for (std::string& s : argv_strings) argv.push_back(s.data());
  const std::optional<FarmWorkerArgs> back =
      parse_farm_worker_argv(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->dir, args.dir);
  EXPECT_EQ(back->shard, args.shard);
  EXPECT_EQ(back->attempt, args.attempt);
}

TEST(FarmWorkerTest, NonWorkerArgvPassesThrough) {
  const char* argv[] = {"binary", "devices"};
  EXPECT_FALSE(
      parse_farm_worker_argv(2, const_cast<char**>(argv)).has_value());
}

TEST(FarmWorkerTest, MalformedWorkerArgvIsRejectedNotIgnored) {
  const char* argv[] = {"binary", "--farm-worker", "--shard", "oops"};
  const std::optional<FarmWorkerArgs> args =
      parse_farm_worker_argv(4, const_cast<char**>(argv));
  ASSERT_TRUE(args.has_value());  // it *is* a worker invocation...
  EXPECT_LT(args->shard, 0);      // ...but an invalid one
}

// -- signal handler install/restore (satellite) -----------------------------

TEST(FarmSignalTest, InstallIsIdempotentAndDetachRestores) {
  // Give SIGTERM a known non-default disposition to restore.
  using Handler = void (*)(int);
  const Handler previous = std::signal(SIGTERM, SIG_IGN);
  ASSERT_NE(previous, SIG_ERR);

  CancelToken first;
  CancelToken second;
  EXPECT_TRUE(install_signal_cancel(&first));
  EXPECT_TRUE(install_signal_cancel(&second));  // idempotent re-install
  // The live handler now trips the *second* token.
  std::raise(SIGTERM);
  EXPECT_FALSE(first.cancelled());
  EXPECT_TRUE(second.cancelled());

  // Detach restores the pre-install disposition (SIG_IGN), not SIG_DFL --
  // raising SIGTERM again must be ignored rather than kill the process.
  EXPECT_TRUE(install_signal_cancel(nullptr));
  std::raise(SIGTERM);
  EXPECT_FALSE(first.cancelled());

  std::signal(SIGTERM, previous == SIG_ERR ? SIG_DFL : previous);
}

}  // namespace
