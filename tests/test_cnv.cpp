#include "nn/cnv_w1a1.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "fabric/catalog.hpp"
#include "nn/finn_blocks.hpp"
#include "synth/optimize.hpp"
#include "synth/report.hpp"

namespace mf {
namespace {

class CnvFixture : public ::testing::Test {
 protected:
  static const CnvDesign& design() {
    static const CnvDesign instance = build_cnv_w1a1();
    return instance;
  }
};

TEST_F(CnvFixture, InventoryMatchesPaper) {
  // Section III: 175 block instances, 74 unique.
  EXPECT_EQ(static_cast<int>(design().instances.size()), kCnvTotalInstances);
  EXPECT_EQ(static_cast<int>(design().unique_modules.size()),
            kCnvUniqueBlocks);
}

TEST_F(CnvFixture, MvauReuseMatchesPaper) {
  // Layers 1+2 share one MVAU config (48 instances), layers 3+4 another
  // (20 instances); mvau_18 has exactly four instances (Table I footnote).
  std::map<int, int> counts;
  for (const BlockInstance& inst : design().instances) {
    ++counts[inst.macro];
  }
  EXPECT_EQ(counts[design().unique_index("mvau_2")],
            kCnvLayer12MvauInstances);
  EXPECT_EQ(counts[design().unique_index("mvau_6")],
            kCnvLayer34MvauInstances);
  EXPECT_EQ(counts[design().unique_index("mvau_18")], 4);
}

TEST_F(CnvFixture, PaperExemplarBlocksExist) {
  EXPECT_GE(design().unique_index("weights_14"), 0);
  EXPECT_GE(design().unique_index("mvau_18"), 0);
  EXPECT_GE(design().unique_index("swu_0"), 0);
  EXPECT_GE(design().unique_index("pool_1"), 0);
}

TEST_F(CnvFixture, Weights14IsTheLargestBlock) {
  int largest = -1;
  int largest_est = 0;
  for (std::size_t u = 0; u < design().unique_modules.size(); ++u) {
    Module m = design().unique_modules[u];
    optimize(m.netlist);
    const int est = make_report(m.netlist).est_slices;
    if (est > largest_est) {
      largest_est = est;
      largest = static_cast<int>(u);
    }
  }
  EXPECT_EQ(largest, design().unique_index("weights_14"));
  // Paper's weights_14 lands around 1,400-1,500 slices.
  EXPECT_NEAR(largest_est, 1400, 200);
}

TEST_F(CnvFixture, UniqueNamesAreUnique) {
  std::set<std::string> names;
  for (const Module& m : design().unique_modules) names.insert(m.name);
  EXPECT_EQ(names.size(), design().unique_modules.size());
}

TEST_F(CnvFixture, InstancesReferenceValidMacros) {
  for (const BlockInstance& inst : design().instances) {
    ASSERT_GE(inst.macro, 0);
    ASSERT_LT(inst.macro,
              static_cast<int>(design().unique_modules.size()));
  }
}

TEST_F(CnvFixture, NetsReferenceValidInstances) {
  for (const BlockNet& net : design().nets) {
    EXPECT_GE(net.instances.size(), 2u);
    for (int inst : net.instances) {
      ASSERT_GE(inst, 0);
      ASSERT_LT(inst, static_cast<int>(design().instances.size()));
    }
  }
}

TEST_F(CnvFixture, EveryInstanceConnected) {
  std::set<int> connected;
  for (const BlockNet& net : design().nets) {
    connected.insert(net.instances.begin(), net.instances.end());
  }
  EXPECT_EQ(connected.size(), design().instances.size());
}

TEST_F(CnvFixture, DesignFillsTheDevice) {
  // Section IV: the design uses essentially all of the xc7z020. We assert
  // the estimate lands in the 90-100% band (the monolithic run then packs
  // to ~100%).
  const Device dev = xc7z020_model();
  long total = 0;
  std::map<int, int> counts;
  for (const BlockInstance& inst : design().instances) ++counts[inst.macro];
  for (std::size_t u = 0; u < design().unique_modules.size(); ++u) {
    Module m = design().unique_modules[u];
    optimize(m.netlist);
    total += static_cast<long>(make_report(m.netlist).est_slices) *
             counts[static_cast<int>(u)];
  }
  const double ratio = static_cast<double>(total) / dev.totals().slices;
  EXPECT_GT(ratio, 0.90);
  EXPECT_LT(ratio, 1.02);
}

TEST_F(CnvFixture, ConvWeightsUseBram) {
  // Layer 1/2 weight blocks are BRAM-backed (the hard-block-driven sub-0.7
  // CF population of Figure 4).
  Module m = design().unique_modules[static_cast<std::size_t>(
      design().unique_index("weights_0"))];
  optimize(m.netlist);
  EXPECT_GT(make_report(m.netlist).bram36, 0);
}

TEST_F(CnvFixture, DeterministicAcrossBuilds) {
  const CnvDesign again = build_cnv_w1a1();
  ASSERT_EQ(again.unique_modules.size(), design().unique_modules.size());
  for (std::size_t u = 0; u < again.unique_modules.size(); ++u) {
    EXPECT_EQ(again.unique_modules[u].name, design().unique_modules[u].name);
    EXPECT_EQ(again.unique_modules[u].netlist.num_cells(),
              design().unique_modules[u].netlist.num_cells());
  }
}

// -- individual FINN blocks ---------------------------------------------------

TEST(FinnBlocks, MvauIsLutCarryHeavy) {
  Rng rng(1);
  Module m = gen_mvau({48, 2, 16, 2}, rng);
  optimize(m.netlist);
  const ResourceReport r = make_report(m.netlist);
  EXPECT_GT(r.stats.luts, 100);
  EXPECT_GT(r.stats.carry4, 8);
  EXPECT_GT(r.stats.ffs, 48);
  EXPECT_EQ(r.stats.lutrams, 0);
}

TEST(FinnBlocks, MvauBroadcastFanout) {
  Rng rng(2);
  Module m = gen_mvau({64, 4, 16, 2}, rng);
  optimize(m.netlist);
  const ResourceReport r = make_report(m.netlist);
  // The mode net fans out to every XNOR lane: >= simd * pe.
  EXPECT_GE(r.stats.max_fanout, 64 * 4);
}

TEST(FinnBlocks, SwuIsMemoryFlavoured) {
  Rng rng(3);
  Module m = gen_swu({64, 32, 3, false}, rng);
  optimize(m.netlist);
  const ResourceReport r = make_report(m.netlist);
  EXPECT_GT(r.stats.srls, 30);
  EXPECT_GT(r.stats.carry4, 0);  // address counters
}

TEST(FinnBlocks, WeightsScaleWithBits) {
  Rng rng(4);
  Module small = gen_weights({4096, 4, 64, false}, rng);
  Rng rng2(4);
  Module big = gen_weights({16384, 4, 64, false}, rng2);
  optimize(small.netlist);
  optimize(big.netlist);
  EXPECT_GT(make_report(big.netlist).est_slices_m,
            make_report(small.netlist).est_slices_m);
}

TEST(FinnBlocks, ThresholdCarryPerChannel) {
  Rng rng(5);
  Module m = gen_threshold({10, 16}, rng);
  optimize(m.netlist);
  const ResourceReport r = make_report(m.netlist);
  EXPECT_EQ(r.stats.carry4, 10 * 4);  // ceil(16/4) per channel
  EXPECT_GT(r.stats.control_sets, 1);
}

TEST(FinnBlocks, PoolUsesComparatorsAndSrl) {
  Rng rng(6);
  Module m = gen_pool({32, 2}, rng);
  optimize(m.netlist);
  const ResourceReport r = make_report(m.netlist);
  EXPECT_EQ(r.stats.srls, 32);
  EXPECT_GT(r.stats.ffs, 32);
}

}  // namespace
}  // namespace mf
