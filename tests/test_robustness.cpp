// Robustness suite (DESIGN.md section 9): crash-safe persistence via the
// atomic-write protocol (with a crash-injection harness walking every byte
// boundary of all three persisted formats), cooperative cancellation with
// checkpoint + bit-identical resume, the serving circuit breaker, and
// registry quarantine. Everything here is deterministic: crash points are
// byte counts, cancellation points are poll counts, and resumed runs are
// compared bit-for-bit against uninterrupted ones.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/cancel.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "fabric/catalog.hpp"
#include "flow/rw_flow.hpp"
#include "flow/serialize.hpp"
#include "ml/rforest.hpp"
#include "nn/finn_blocks.hpp"
#include "rtlgen/generators.hpp"
#include "serve/bundle.hpp"
#include "serve/registry.hpp"
#include "serve/service.hpp"

namespace mf {
namespace {

namespace fs = std::filesystem;

/// Scratch directory wiped per test.
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_((fs::temp_directory_path() /
               ("mf_robust_" + tag + "_" + std::to_string(::getpid())))
                  .string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (fs::path(path_) / name).string();
  }

 private:
  std::string path_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Same synthetic design as the chaos suite: 3 unique blocks, 8 instances.
BlockDesign small_design() {
  BlockDesign design;
  Rng rng(1);
  MixedParams a;
  a.luts = 120;
  a.ffs = 100;
  design.unique_modules.push_back(gen_mixed(a, rng));
  design.unique_modules.back().name = "block_a";
  MixedParams bparams;
  bparams.luts = 60;
  bparams.ffs = 90;
  bparams.carry_adders = 1;
  design.unique_modules.push_back(gen_mixed(bparams, rng));
  design.unique_modules.back().name = "block_b";
  Rng rng2(2);
  design.unique_modules.push_back(gen_mvau({32, 1, 16, 1}, rng2));
  design.unique_modules.back().name = "block_c";

  const int pattern[] = {0, 1, 2, 1, 0, 2, 1, 1};
  for (int i = 0; i < 8; ++i) {
    design.instances.push_back(
        BlockInstance{"i" + std::to_string(i), pattern[i]});
  }
  for (int i = 0; i + 1 < 8; ++i) {
    design.nets.push_back(BlockNet{{i, i + 1}, 1.0});
  }
  return design;
}

RwFlowOptions fast_opts() {
  RwFlowOptions opts;
  opts.compute_timing = false;
  opts.stitch.moves_per_temp = 100;
  opts.stitch.cooling = 0.8;
  if (const char* jobs = std::getenv("MF_TEST_JOBS")) {
    opts.jobs = std::max(1, std::atoi(jobs));
  }
  return opts;
}

/// Tiny labelled ground-truth set (hand-filled; serialisation does not care
/// how the labels were produced).
std::vector<LabeledModule> tiny_ground_truth(int n, int salt = 0) {
  std::vector<LabeledModule> samples;
  for (int i = 0; i < n; ++i) {
    LabeledModule s;
    s.name = "mod_" + std::to_string(i + salt);
    s.min_cf = 1.0 + 0.25 * i + 0.01 * salt;
    s.report.stats.luts = 100 + 17 * i;
    s.report.stats.ffs = 80 + 3 * i;
    s.report.stats.carry4 = i;
    s.report.stats.cells = 200 + i;
    s.report.stats.carry_chains = {4 + i, 8};
    s.report.est_slices = 40 + i;
    s.shape.bbox_w = 5 + i;
    s.shape.bbox_h = 7;
    s.shape.min_height = 3;
    s.shape.carry_columns = 1;
    samples.push_back(std::move(s));
  }
  return samples;
}

/// A tiny trained bundle (decision tree on a synthetic set: fast).
ModelBundle tiny_bundle(const std::string& name = "m", std::uint64_t seed = 7) {
  Dataset data;
  data.feature_names = feature_names(FeatureSet::Classical);
  Rng rng(seed);
  for (std::size_t i = 0; i < 60; ++i) {
    std::vector<double> row(data.feature_names.size());
    double target = 0.4;
    for (std::size_t j = 0; j < row.size(); ++j) {
      row[j] = j % 2 == 0 ? rng.uniform(0.0, 4000.0) : rng.uniform(0.0, 1.0);
      target += row[j] * (j % 3 == 0 ? 2.5e-4 : 0.05);
    }
    data.add(std::move(row), target, "s" + std::to_string(i));
  }
  CfEstimator::Options options;
  options.dtree.max_depth = 4;
  ModelBundle bundle;
  bundle.name = name;
  bundle.provenance.seed = seed;
  bundle.provenance.dataset_rows = 60;
  bundle.estimator =
      CfEstimator(EstimatorKind::DecisionTree, FeatureSet::Classical, options);
  bundle.estimator.train(data);
  return bundle;
}

/// A cache entry with every persisted field exercised.
ImplementedBlock fake_block(const std::string& name, int salt) {
  ImplementedBlock b;
  b.name = name;
  b.status = salt % 2 == 0 ? FlowStatus::Ok : FlowStatus::Degraded;
  b.seed_cf = 1.5 + 0.1 * salt;
  b.first_run_success = salt % 2 == 0;
  b.attempts = salt;
  b.macro.name = name;
  b.macro.cf = 1.25 + 0.05 * salt;
  b.macro.fill_ratio = 0.5;
  b.macro.tool_runs = 2 + salt;
  b.macro.used_slices = 30 + salt;
  b.macro.est_slices = 28 + salt;
  b.macro.pblock = PBlock{1 + salt, 3 + salt, 0, 5};
  b.macro.footprint.height = 6;
  b.macro.footprint.kinds = {ColumnKind::ClbL, ColumnKind::ClbM};
  return b;
}

// -- atomic_write_file ------------------------------------------------------

TEST(AtomicFile, WritesCreateAndReplace) {
  TempDir dir("atomic_basic");
  const std::string path = dir.file("a.txt");
  EXPECT_TRUE(atomic_write_file(path, "one\n"));
  EXPECT_EQ(read_file(path), "one\n");
  EXPECT_TRUE(atomic_write_file(path, "two\n"));
  EXPECT_EQ(read_file(path), "two\n");
  // No temp litter after successful writes.
  int files = 0;
  for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir.path())) {
    ++files;
  }
  EXPECT_EQ(files, 1);
}

TEST(AtomicFile, ReportsUnwritableDirectory) {
  std::string error;
  EXPECT_FALSE(atomic_write_file("/no/such/dir/file.txt", "x", &error));
  EXPECT_FALSE(error.empty());
}

TEST(AtomicFile, CrashAtEveryByteBoundaryLeavesOldOrNew) {
  TempDir dir("atomic_crash");
  const std::string path = dir.file("state.txt");
  const std::string old_content = "the complete old file\n";
  const std::string new_content = "an entirely different new file body\n";
  ASSERT_TRUE(atomic_write_file(path, old_content));

  for (std::size_t n = 0; n <= new_content.size(); ++n) {
    ScopedWriteCrash crash(static_cast<long>(n));
    std::string error;
    EXPECT_FALSE(atomic_write_file(path, new_content, &error));
    EXPECT_NE(error.find("crash"), std::string::npos);
    // Old-or-new invariant: the visible file is always the complete old one.
    EXPECT_EQ(read_file(path), old_content) << "crash after " << n << " bytes";
  }
  // Hook disarmed: the write goes through and replaces wholesale.
  EXPECT_TRUE(atomic_write_file(path, new_content));
  EXPECT_EQ(read_file(path), new_content);
}

// -- crash-injection harness over the three persisted formats ---------------
// For every byte boundary of the new serialisation: arm the crash, attempt
// the save, and assert the on-disk file still loads as the complete *old*
// state. Then disarm and assert the save commits the complete new state.

TEST(CrashHarness, GroundTruthIsAlwaysOldOrNew) {
  TempDir dir("crash_gt");
  const std::string path = dir.file("gt.txt");
  const auto old_samples = tiny_ground_truth(2);
  const auto new_samples = tiny_ground_truth(3, 100);
  ASSERT_TRUE(save_ground_truth(path, old_samples));
  const std::string old_text = read_file(path);
  const std::string new_text = ground_truth_to_text(new_samples);

  for (std::size_t n = 0; n <= new_text.size(); ++n) {
    ScopedWriteCrash crash(static_cast<long>(n));
    EXPECT_FALSE(save_ground_truth(path, new_samples));
    const auto loaded = load_ground_truth(path);
    ASSERT_TRUE(loaded.has_value()) << "crash after " << n << " bytes";
    EXPECT_EQ(ground_truth_to_text(*loaded), old_text);
  }
  ASSERT_TRUE(save_ground_truth(path, new_samples));
  const auto loaded = load_ground_truth(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(ground_truth_to_text(*loaded), new_text);
}

TEST(CrashHarness, ModuleCacheIsAlwaysOldOrNew) {
  TempDir dir("crash_cache");
  const std::string path = dir.file("cache.ckpt");
  ModuleCache old_cache;
  old_cache.restore(fake_block("alpha", 0));
  old_cache.restore(fake_block("beta", 1));
  ModuleCache new_cache;
  new_cache.restore(fake_block("alpha", 2));
  new_cache.restore(fake_block("gamma", 3));
  ASSERT_TRUE(save_module_cache(path, old_cache));
  const std::string old_text = read_file(path);
  const std::string new_text = module_cache_to_text(new_cache);

  for (std::size_t n = 0; n <= new_text.size(); ++n) {
    ScopedWriteCrash crash(static_cast<long>(n));
    EXPECT_FALSE(save_module_cache(path, new_cache));
    ModuleCache reloaded;
    const CacheLoadStats stats = load_module_cache(path, reloaded);
    EXPECT_TRUE(stats.complete) << "crash after " << n << " bytes";
    EXPECT_EQ(stats.corrupted, 0);
    EXPECT_EQ(module_cache_to_text(reloaded), old_text);
  }
  ASSERT_TRUE(save_module_cache(path, new_cache));
  EXPECT_EQ(read_file(path), new_text);
}

TEST(CrashHarness, ModelBundleIsAlwaysOldOrNew) {
  TempDir dir("crash_bundle");
  const std::string path = dir.file("m-v1.mfb");
  const ModelBundle old_bundle = tiny_bundle("m", 7);
  const ModelBundle new_bundle = tiny_bundle("m", 8);
  ASSERT_TRUE(save_bundle(path, old_bundle));
  const std::string old_text = read_file(path);
  const std::string new_text = bundle_to_text(new_bundle);

  for (std::size_t n = 0; n <= new_text.size(); ++n) {
    ScopedWriteCrash crash(static_cast<long>(n));
    std::string error;
    EXPECT_FALSE(save_bundle(path, new_bundle, &error));
    const auto loaded = load_bundle(path);
    ASSERT_TRUE(loaded.has_value()) << "crash after " << n << " bytes";
    EXPECT_EQ(bundle_to_text(*loaded), old_text);
  }
  ASSERT_TRUE(save_bundle(path, new_bundle));
  EXPECT_EQ(read_file(path), new_text);
}

// -- the same old-or-new sweeps over the *binary* tier -----------------------
// The binary saves go through the identical atomic_write_file path, so a
// crash at any byte must leave the complete old file -- and because binary
// loads are all-or-nothing, "old" is checked by loading, not just by bytes.

TEST(CrashHarness, BinaryGroundTruthIsAlwaysOldOrNew) {
  TempDir dir("crash_gt_bin");
  const std::string path = dir.file("gt.mfb");
  const auto old_samples = tiny_ground_truth(2);
  const auto new_samples = tiny_ground_truth(3, 100);
  ASSERT_TRUE(save_ground_truth(path, old_samples, PersistFormat::Binary));
  const std::string old_text = ground_truth_to_text(old_samples);
  const std::string new_binary = ground_truth_to_binary(new_samples);

  for (std::size_t n = 0; n <= new_binary.size(); n += 7) {
    ScopedWriteCrash crash(static_cast<long>(n));
    EXPECT_FALSE(save_ground_truth(path, new_samples, PersistFormat::Binary));
    const auto loaded = load_ground_truth(path);
    ASSERT_TRUE(loaded.has_value()) << "crash after " << n << " bytes";
    EXPECT_EQ(ground_truth_to_text(*loaded), old_text);
  }
  ASSERT_TRUE(save_ground_truth(path, new_samples, PersistFormat::Binary));
  EXPECT_EQ(read_file(path), new_binary);
}

TEST(CrashHarness, BinaryModuleCacheIsAlwaysOldOrNew) {
  TempDir dir("crash_cache_bin");
  const std::string path = dir.file("cache.ckpt");
  ModuleCache old_cache;
  old_cache.restore(fake_block("alpha", 0));
  ModuleCache new_cache;
  new_cache.restore(fake_block("alpha", 2));
  new_cache.restore(fake_block("gamma", 3));
  ASSERT_TRUE(save_module_cache(path, old_cache, PersistFormat::Binary));
  const std::string old_text = module_cache_to_text(old_cache);
  const std::string new_binary = module_cache_to_binary(new_cache);

  for (std::size_t n = 0; n <= new_binary.size(); n += 7) {
    ScopedWriteCrash crash(static_cast<long>(n));
    EXPECT_FALSE(save_module_cache(path, new_cache, PersistFormat::Binary));
    ModuleCache reloaded;
    const CacheLoadStats stats = load_module_cache(path, reloaded);
    EXPECT_TRUE(stats.complete) << "crash after " << n << " bytes";
    EXPECT_EQ(stats.corrupted, 0);
    EXPECT_EQ(module_cache_to_text(reloaded), old_text);
  }
  ASSERT_TRUE(save_module_cache(path, new_cache, PersistFormat::Binary));
  EXPECT_EQ(read_file(path), new_binary);
}

TEST(CrashHarness, BinaryModelBundleIsAlwaysOldOrNew) {
  TempDir dir("crash_bundle_bin");
  const std::string path = dir.file("m-v1.mfb");
  const ModelBundle old_bundle = tiny_bundle("m", 7);
  const ModelBundle new_bundle = tiny_bundle("m", 8);
  ASSERT_TRUE(save_bundle(path, old_bundle, nullptr, PersistFormat::Binary));
  const std::string old_text = bundle_to_text(old_bundle);
  const std::string new_binary = bundle_to_binary(new_bundle);

  for (std::size_t n = 0; n <= new_binary.size(); n += 7) {
    ScopedWriteCrash crash(static_cast<long>(n));
    EXPECT_FALSE(save_bundle(path, new_bundle, nullptr, PersistFormat::Binary));
    const auto loaded = load_bundle(path);
    ASSERT_TRUE(loaded.has_value()) << "crash after " << n << " bytes";
    EXPECT_EQ(bundle_to_text(*loaded), old_text);
  }
  ASSERT_TRUE(save_bundle(path, new_bundle, nullptr, PersistFormat::Binary));
  EXPECT_EQ(read_file(path), new_binary);
}

TEST(CrashHarness, RegistryPutCrashLeavesNoVisibleBundle) {
  TempDir dir("crash_put");
  ModelRegistry registry(dir.path());
  {
    ScopedWriteCrash crash(16);
    EXPECT_FALSE(registry.put(tiny_bundle()).has_value());
  }
  // The temp file left by the "crash" is invisible to the registry scan.
  EXPECT_TRUE(registry.list().empty());
  // And a clean retry commits version 1 as if the crash never happened.
  const auto entry = registry.put(tiny_bundle());
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->version, 1);
  ASSERT_EQ(registry.list().size(), 1u);
}

// -- cooperative cancellation -----------------------------------------------

TEST(Cancel, TokenSemantics) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.cancelled());  // sticky

  CancelToken deadline;
  deadline.set_deadline_seconds(-1.0);  // already expired
  EXPECT_TRUE(deadline.cancelled());

  CancelToken polls;
  polls.cancel_after(3);
  EXPECT_FALSE(polls.cancelled());
  EXPECT_FALSE(polls.cancelled());
  EXPECT_TRUE(polls.cancelled());  // third poll trips
  EXPECT_TRUE(polls.cancelled());

  EXPECT_THROW(throw_if_cancelled(&polls), CancelledError);
  EXPECT_NO_THROW(throw_if_cancelled(nullptr));
}

TEST(Cancel, SequentialParallelForEachStopsAtDeterministicPoint) {
  CancelToken token;
  token.cancel_after(10);
  int executed = 0;
  parallel_for_each(1, 100, [&](std::size_t) { ++executed; }, &token);
  // The token is polled once before each iteration: 9 run, the 10th poll
  // trips before i = 9.
  EXPECT_EQ(executed, 9);
}

TEST(Cancel, PooledParallelForEachStopsClaiming) {
  CancelToken token;
  token.cancel_after(1);  // first poll trips, before any index is claimed
  std::atomic<int> executed{0};
  parallel_for_each(8, 64, [&](std::size_t) { ++executed; }, &token);
  EXPECT_EQ(executed.load(), 0);
}

TEST(Cancel, PreCancelledFlowMarksEveryBlockCancelled) {
  CancelToken token;
  token.cancel();
  RwFlowOptions opts = fast_opts();
  opts.cancel = &token;
  const RwFlowResult result =
      run_rw_flow(small_design(), xc7z020_model(), CfPolicy{}, opts);
  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(result.cancelled_blocks, 3);
  EXPECT_EQ(result.failed_blocks, 0);  // cancelled != failed
  for (const ImplementedBlock& block : result.blocks) {
    EXPECT_EQ(block.status, FlowStatus::Cancelled);
    EXPECT_FALSE(block.ok());
    EXPECT_FALSE(block.name.empty());
  }
  // No stitch on a cancelled run: a partial placement is not a result.
  EXPECT_TRUE(result.problem.instances.empty());
  EXPECT_EQ(std::string(to_string(FlowStatus::Cancelled)), "cancelled");
}

TEST(Cancel, CancelledFlowCheckpointsAndResumeIsBitIdentical) {
  const BlockDesign design = small_design();
  const Device dev = xc7z020_model();
  TempDir dir("cancel_resume");

  // Reference: one uninterrupted run, checkpointed.
  RwFlowOptions full_opts = fast_opts();
  full_opts.checkpoint_path = dir.file("full.ckpt");
  ModuleCache full_cache;
  const RwFlowResult full =
      full_cache.run(design, dev, CfPolicy{}, full_opts);
  ASSERT_FALSE(full.cancelled);
  ASSERT_EQ(full.failed_blocks, 0);

  // Cancelled run: jobs = 1 so the poll-count hook stops after exactly one
  // implemented block.
  CancelToken token;
  token.cancel_after(2);
  RwFlowOptions cancel_opts = fast_opts();
  cancel_opts.jobs = 1;
  cancel_opts.cancel = &token;
  cancel_opts.checkpoint_path = dir.file("resume.ckpt");
  ModuleCache cancelled_cache;
  const RwFlowResult cancelled =
      cancelled_cache.run(design, dev, CfPolicy{}, cancel_opts);
  EXPECT_TRUE(cancelled.cancelled);
  EXPECT_EQ(cancelled.cancelled_blocks, 2);
  EXPECT_EQ(cancelled.blocks[0].status, FlowStatus::Ok);
  EXPECT_EQ(cancelled.blocks[1].status, FlowStatus::Cancelled);
  EXPECT_EQ(cancelled.blocks[2].status, FlowStatus::Cancelled);

  // The checkpoint holds exactly the completed block.
  ModuleCache resumed_cache;
  const CacheLoadStats loaded =
      load_module_cache(dir.file("resume.ckpt"), resumed_cache);
  EXPECT_TRUE(loaded.complete);
  EXPECT_EQ(loaded.loaded, 1);
  EXPECT_EQ(loaded.corrupted, 0);

  // Resume without the token: recomputes only the missing blocks, and the
  // final state is bit-identical to the uninterrupted run -- same macros
  // (checkpoint text equality) and same stitch, move for move.
  RwFlowOptions resume_opts = fast_opts();
  resume_opts.checkpoint_path = dir.file("resume.ckpt");
  const RwFlowResult resumed =
      resumed_cache.run(design, dev, CfPolicy{}, resume_opts);
  EXPECT_FALSE(resumed.cancelled);
  EXPECT_EQ(resumed_cache.misses(), 2);  // only the two cancelled blocks
  EXPECT_EQ(read_file(dir.file("resume.ckpt")),
            read_file(dir.file("full.ckpt")));
  ASSERT_EQ(resumed.blocks.size(), full.blocks.size());
  for (std::size_t i = 0; i < full.blocks.size(); ++i) {
    EXPECT_EQ(resumed.blocks[i].status, full.blocks[i].status);
    EXPECT_EQ(resumed.blocks[i].macro.cf, full.blocks[i].macro.cf);
    EXPECT_EQ(resumed.blocks[i].macro.used_slices,
              full.blocks[i].macro.used_slices);
  }
  EXPECT_EQ(resumed.stitch.cost, full.stitch.cost);
  EXPECT_EQ(resumed.stitch.wirelength, full.stitch.wirelength);
  EXPECT_EQ(resumed.stitch.total_moves, full.stitch.total_moves);
  ASSERT_EQ(resumed.stitch.positions.size(), full.stitch.positions.size());
  for (std::size_t i = 0; i < full.stitch.positions.size(); ++i) {
    EXPECT_EQ(resumed.stitch.positions[i].col, full.stitch.positions[i].col);
    EXPECT_EQ(resumed.stitch.positions[i].row, full.stitch.positions[i].row);
  }
}

TEST(Cancel, MidRunCancellationAtAnyJobsStillResumesIdentically) {
  // Schedule-dependent variant: at MF_TEST_JOBS workers the set of blocks
  // that completes before the trip is arbitrary -- the invariant is that
  // resume converges to the exact uninterrupted state anyway (each block is
  // a pure function of its inputs).
  const BlockDesign design = small_design();
  const Device dev = xc7z020_model();
  TempDir dir("cancel_resume_mt");

  RwFlowOptions full_opts = fast_opts();
  full_opts.checkpoint_path = dir.file("full.ckpt");
  ModuleCache full_cache;
  full_cache.run(design, dev, CfPolicy{}, full_opts);

  CancelToken token;
  token.cancel_after(2);
  RwFlowOptions cancel_opts = fast_opts();
  cancel_opts.cancel = &token;
  cancel_opts.checkpoint_path = dir.file("resume.ckpt");
  ModuleCache cancelled_cache;
  cancelled_cache.run(design, dev, CfPolicy{}, cancel_opts);

  ModuleCache resumed_cache;
  load_module_cache(dir.file("resume.ckpt"), resumed_cache);
  RwFlowOptions resume_opts = fast_opts();
  resume_opts.checkpoint_path = dir.file("resume.ckpt");
  resumed_cache.run(design, dev, CfPolicy{}, resume_opts);
  EXPECT_EQ(read_file(dir.file("resume.ckpt")),
            read_file(dir.file("full.ckpt")));
}

TEST(Cancel, StitchWatchdogHonoursToken) {
  // Build a stitch problem from a clean run, then stitch it again with a
  // tripped token: the amortised watchdog fires on the first check and the
  // result degrades to the initial placement.
  const RwFlowResult full =
      run_rw_flow(small_design(), xc7z020_model(), CfPolicy{}, fast_opts());
  ASSERT_FALSE(full.problem.instances.empty());

  CancelToken token;
  token.cancel();
  StitchOptions opts = fast_opts().stitch;
  opts.cancel = &token;
  const StitchResult result =
      stitch(xc7z020_model(), full.problem, opts);
  EXPECT_TRUE(result.watchdog_fired);
  EXPECT_LT(result.total_moves, 32);
}

TEST(Cancel, ForestFitThrowsAndLeavesNoHalfForest) {
  std::vector<std::vector<double>> x(40, std::vector<double>(4, 0.0));
  std::vector<double> y(40, 1.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i][0] = static_cast<double>(i);
    y[i] = static_cast<double>(i % 5);
  }
  CancelToken token;
  token.cancel();
  RForestOptions opts;
  opts.trees = 16;
  opts.jobs = 1;
  opts.cancel = &token;
  RandomForest forest;
  EXPECT_THROW(forest.fit(x, y, opts), CancelledError);
  EXPECT_EQ(forest.tree_count(), 0u);
}

TEST(Cancel, PredictRowsReturnsNulloptNeverAPartialBatch) {
  TempDir dir("cancel_predict");
  ModelRegistry registry(dir.path());
  ASSERT_TRUE(registry.put(tiny_bundle()).has_value());

  CancelToken token;
  token.cancel();
  ServiceOptions options;
  options.jobs = 1;
  options.batch_grain = 8;
  options.cancel = &token;
  EstimatorService service(dir.path(), options);
  const std::vector<std::vector<double>> rows(
      64, std::vector<double>(feature_names(FeatureSet::Classical).size(),
                              1.0));
  EXPECT_FALSE(service.predict_rows("m", rows).has_value());
  EXPECT_NE(service.last_error().find("cancelled"), std::string::npos);
}

// -- circuit breaker --------------------------------------------------------

TEST(Breaker, DisabledKeepsLegacyNulloptContract) {
  TempDir dir("breaker_off");
  EstimatorService service(dir.path());  // threshold 0 = disabled
  const std::vector<std::vector<double>> rows(
      4, std::vector<double>(feature_names(FeatureSet::Classical).size(),
                             1.0));
  EXPECT_FALSE(service.predict_rows("ghost", rows).has_value());
  EXPECT_EQ(service.stats().fallback_requests, 0u);
  EXPECT_EQ(service.stats().breaker_trips, 0u);
  EXPECT_EQ(service.stats().resolve_failures, 1u);
}

TEST(Breaker, TripsAfterConsecutiveFailuresAndServesConstantCf) {
  TempDir dir("breaker_trip");
  ServiceOptions options;
  options.breaker_failure_threshold = 2;
  options.breaker_cooldown_seconds = 3600.0;  // stays open for the test
  options.fallback_cf = 1.75;
  EstimatorService service(dir.path(), options);

  ResourceReport report;
  ShapeReport shape;
  // Every request is answered (degraded), never an error.
  for (int k = 0; k < 5; ++k) {
    const auto cf = service.estimate("ghost", report, shape);
    ASSERT_TRUE(cf.has_value());
    EXPECT_EQ(*cf, 1.75);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.fallback_requests, 5u);
  EXPECT_EQ(stats.breaker_trips, 1u);
  // After the trip the registry is not consulted again: failures 1 and 2
  // hit the disk, requests 3..5 short-circuit.
  EXPECT_EQ(stats.resolve_failures, 2u);
  EXPECT_EQ(stats.bundle_loads, 0u);

  // Batched prediction degrades the same way.
  const std::vector<std::vector<double>> rows(
      3, std::vector<double>(feature_names(FeatureSet::Classical).size(),
                             1.0));
  const auto batch = service.predict_rows("ghost", rows);
  ASSERT_TRUE(batch.has_value());
  for (double v : *batch) EXPECT_EQ(v, 1.75);
}

TEST(Breaker, HalfOpenProbeHealsOnceABundleAppears) {
  TempDir dir("breaker_heal");
  ServiceOptions options;
  options.breaker_failure_threshold = 1;
  options.breaker_cooldown_seconds = 0.0;  // immediate half-open probes
  options.fallback_cf = 1.5;
  EstimatorService service(dir.path(), options);

  ResourceReport report;
  ShapeReport shape;
  EXPECT_EQ(service.estimate("m", report, shape), 1.5);  // trips the breaker
  EXPECT_EQ(service.stats().breaker_trips, 1u);

  // A model shows up; the next request's half-open probe loads it and the
  // breaker closes -- real predictions from here on.
  ModelRegistry registry(dir.path());
  ASSERT_TRUE(registry.put(tiny_bundle()).has_value());
  const auto healed = service.estimate("m", report, shape);
  ASSERT_TRUE(healed.has_value());
  EXPECT_EQ(service.stats().bundle_loads, 1u);
  EXPECT_EQ(service.stats().fallback_requests, 1u);  // only the first call
  // And failures reset: stats stay put across further healthy requests.
  service.estimate("m", report, shape);
  EXPECT_EQ(service.stats().breaker_trips, 1u);
}

// -- registry quarantine ----------------------------------------------------

TEST(Quarantine, CorruptBundleIsMovedWithReasonAndOlderVersionServes) {
  TempDir dir("quarantine");
  ModelRegistry registry(dir.path());
  ASSERT_TRUE(registry.put(tiny_bundle("m", 7)).has_value());   // v1
  const auto v2 = registry.put(tiny_bundle("m", 8));            // v2
  ASSERT_TRUE(v2.has_value());

  // Damage the newest version on disk (truncate to half).
  const std::string text = read_file(v2->path);
  {
    std::ofstream out(v2->path, std::ios::binary | std::ios::trunc);
    out << text.substr(0, text.size() / 2);
  }

  ResolveStats stats;
  const auto resolved =
      registry.resolve("m", std::nullopt, std::nullopt, &stats);
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(resolved->version, 1);
  EXPECT_EQ(stats.corrupt, 1);
  EXPECT_EQ(stats.quarantined, 1);

  // The damaged file moved into quarantine/ with a .reason sibling.
  EXPECT_FALSE(fs::exists(v2->path));
  const fs::path moved =
      fs::path(registry.quarantine_dir()) / fs::path(v2->path).filename();
  EXPECT_TRUE(fs::exists(moved));
  const std::string reason = read_file(moved.string() + ".reason");
  EXPECT_NE(reason.find("m-v2"), std::string::npos);
  EXPECT_FALSE(reason.empty());

  // Self-healed: the next resolve no longer sees (or re-parses) the corpse.
  ResolveStats again;
  const auto second =
      registry.resolve("m", std::nullopt, std::nullopt, &again);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(again.considered, 1);
  EXPECT_EQ(again.corrupt, 0);
  EXPECT_EQ(again.quarantined, 0);

  // put() keeps counting versions upward: quarantine does not recycle v2.
  const auto v3 = registry.put(tiny_bundle("m", 9));
  ASSERT_TRUE(v3.has_value());
  EXPECT_EQ(v3->version, 3);
}

TEST(Quarantine, ServiceFallsBackToOlderCleanBundleTransparently) {
  TempDir dir("quarantine_service");
  ModelRegistry registry(dir.path());
  const ModelBundle good = tiny_bundle("m", 7);
  ASSERT_TRUE(registry.put(good).has_value());
  const auto v2 = registry.put(tiny_bundle("m", 8));
  ASSERT_TRUE(v2.has_value());
  {
    std::ofstream out(v2->path, std::ios::binary | std::ios::trunc);
    out << "not a bundle";
  }

  EstimatorService service(dir.path());
  const std::vector<std::vector<double>> rows(
      4, std::vector<double>(feature_names(FeatureSet::Classical).size(),
                             2.0));
  const auto batch = service.predict_rows("m", rows);
  ASSERT_TRUE(batch.has_value());
  // Served from v1 -- the same numbers the good bundle produces directly.
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ((*batch)[i], good.estimator.predict_row(rows[i]));
  }
  EXPECT_EQ(service.bundle("m")->version, 1);
}

}  // namespace
}  // namespace mf
