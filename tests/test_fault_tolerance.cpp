// Chaos suite for the fault-tolerant flow runtime: deterministic fault
// injection, retry/backoff accounting, graceful degradation, checkpoint
// resume, and the SA watchdog. Everything here is seeded -- two runs with
// the same knobs must agree bit-for-bit.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "fabric/catalog.hpp"
#include "flow/rw_flow.hpp"
#include "flow/serialize.hpp"
#include "flow/tool_run.hpp"
#include "nn/cnv_w1a1.hpp"
#include "nn/finn_blocks.hpp"
#include "rtlgen/generators.hpp"

namespace mf {
namespace {

/// Same synthetic design as test_flow.cpp: 3 unique blocks, 8 instances.
BlockDesign small_design() {
  BlockDesign design;
  Rng rng(1);
  MixedParams a;
  a.luts = 120;
  a.ffs = 100;
  design.unique_modules.push_back(gen_mixed(a, rng));
  design.unique_modules.back().name = "block_a";
  MixedParams bparams;
  bparams.luts = 60;
  bparams.ffs = 90;
  bparams.carry_adders = 1;
  design.unique_modules.push_back(gen_mixed(bparams, rng));
  design.unique_modules.back().name = "block_b";
  Rng rng2(2);
  design.unique_modules.push_back(gen_mvau({32, 1, 16, 1}, rng2));
  design.unique_modules.back().name = "block_c";

  const int pattern[] = {0, 1, 2, 1, 0, 2, 1, 1};
  for (int i = 0; i < 8; ++i) {
    design.instances.push_back(
        BlockInstance{"i" + std::to_string(i), pattern[i]});
  }
  for (int i = 0; i + 1 < 8; ++i) {
    design.nets.push_back(BlockNet{{i, i + 1}, 1.0});
  }
  return design;
}

RwFlowOptions fast_opts() {
  RwFlowOptions opts;
  opts.compute_timing = false;
  opts.stitch.moves_per_temp = 100;
  opts.stitch.cooling = 0.8;
  // ctest re-runs this suite as `chaos_parallel_jobs` with MF_TEST_JOBS=8 so
  // fault injection and the parallel engine are exercised together. Every
  // expectation below is unconditional on the thread count -- determinism is
  // the contract being tested.
  if (const char* jobs = std::getenv("MF_TEST_JOBS")) {
    opts.jobs = std::max(1, std::atoi(jobs));
  }
  return opts;
}

ToolRunnerOptions chaos_options(double p_crash, double p_timeout,
                                double p_spurious,
                                std::uint64_t seed = 0xc0ffee) {
  ToolRunnerOptions opts;
  opts.fault.enabled = true;
  opts.fault.seed = seed;
  opts.fault.p_crash = p_crash;
  opts.fault.p_timeout = p_timeout;
  opts.fault.p_spurious_infeasible = p_spurious;
  return opts;
}

PlaceResult feasible_place() {
  PlaceResult place;
  place.feasible = true;
  place.used_slices = 10;
  return place;
}

// -- FaultInjector ----------------------------------------------------------

TEST(FaultInjector, DisabledInjectsNothing) {
  FaultInjectorOptions opts;
  opts.enabled = false;
  opts.p_crash = 1.0;
  const FaultInjector injector(opts);
  for (int k = 0; k < 100; ++k) {
    EXPECT_EQ(injector.draw("block", k), FaultKind::None);
  }
}

TEST(FaultInjector, DrawIsAPureFunctionOfSeedBlockAndOrdinal) {
  const auto opts = chaos_options(0.2, 0.2, 0.2).fault;
  const FaultInjector a(opts);
  const FaultInjector b(opts);
  for (int k = 0; k < 500; ++k) {
    EXPECT_EQ(a.draw("mvau_3", k), b.draw("mvau_3", k));
  }
  // Different blocks get independent streams; different seeds diverge.
  auto other_seed = opts;
  other_seed.seed = 1234567;
  const FaultInjector c(other_seed);
  int differing_block = 0;
  int differing_seed = 0;
  for (int k = 0; k < 500; ++k) {
    differing_block += a.draw("mvau_3", k) != a.draw("thres_1", k) ? 1 : 0;
    differing_seed += a.draw("mvau_3", k) != c.draw("mvau_3", k) ? 1 : 0;
  }
  EXPECT_GT(differing_block, 0);
  EXPECT_GT(differing_seed, 0);
}

TEST(FaultInjector, RatesRoughlyMatchProbabilities) {
  const FaultInjector injector(chaos_options(0.1, 0.1, 0.1).fault);
  int crash = 0;
  int timeout = 0;
  int spurious = 0;
  const int n = 20000;
  for (int k = 0; k < n; ++k) {
    switch (injector.draw("block", k)) {
      case FaultKind::Crash: ++crash; break;
      case FaultKind::Timeout: ++timeout; break;
      case FaultKind::SpuriousInfeasible: ++spurious; break;
      case FaultKind::None: break;
    }
  }
  EXPECT_NEAR(crash / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(timeout / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(spurious / static_cast<double>(n), 0.1, 0.01);
}

TEST(FaultInjector, RejectsBadProbabilities) {
  FaultInjectorOptions opts;
  opts.enabled = true;
  opts.p_crash = 0.7;
  opts.p_timeout = 0.7;
  EXPECT_THROW(FaultInjector{opts}, CheckError);
  opts.p_timeout = -0.1;
  EXPECT_THROW(FaultInjector{opts}, CheckError);
}

// -- ToolRunner: retry, backoff, budgets ------------------------------------

TEST(ToolRunner, RetryCountersAndBackoffAreExact) {
  // Every invocation crashes: the check burns its full attempt allowance.
  auto opts = chaos_options(1.0, 0.0, 0.0);
  opts.retry.max_attempts_per_check = 4;
  opts.retry.backoff_base_ms = 50.0;
  opts.retry.backoff_factor = 2.0;
  opts.retry.backoff_cap_ms = 2000.0;
  ToolRunner runner(opts);
  const auto out = runner.run_check("b", 1.5, [] { return feasible_place(); });
  EXPECT_FALSE(out.completed);
  EXPECT_EQ(out.error.kind, FlowErrorKind::ToolCrash);
  EXPECT_EQ(out.error.block, "b");
  EXPECT_DOUBLE_EQ(out.error.cf, 1.5);
  EXPECT_EQ(out.error.attempts, 4);
  EXPECT_EQ(runner.stats().invocations, 4);
  EXPECT_EQ(runner.stats().crashes, 4);
  EXPECT_EQ(runner.stats().retries, 3);
  EXPECT_EQ(runner.stats().completed, 0);
  // Backoff schedule: 50, 100, 200 ms for retries 1..3.
  EXPECT_DOUBLE_EQ(runner.stats().backoff_ms, 350.0);
}

TEST(ToolRunner, BackoffIsCapped) {
  auto opts = chaos_options(0.0, 1.0, 0.0);
  opts.retry.max_attempts_per_check = 4;
  opts.retry.backoff_base_ms = 100.0;
  opts.retry.backoff_factor = 10.0;
  opts.retry.backoff_cap_ms = 150.0;
  ToolRunner runner(opts);
  const auto out = runner.run_check("b", 1.0, [] { return feasible_place(); });
  EXPECT_EQ(out.error.kind, FlowErrorKind::ToolTimeout);
  // 100 + capped(1000 -> 150) + capped(10000 -> 150).
  EXPECT_DOUBLE_EQ(runner.stats().backoff_ms, 400.0);
}

TEST(ToolRunner, PerBlockRetryBudgetExhaustsAndCanBeRegranted) {
  auto opts = chaos_options(1.0, 0.0, 0.0);
  opts.retry.max_attempts_per_check = 4;
  opts.retry.retry_budget_per_block = 2;
  ToolRunner runner(opts);
  auto out = runner.run_check("b", 1.0, [] { return feasible_place(); });
  EXPECT_EQ(out.error.attempts, 3);  // 2 retries allowed, then budget dry
  EXPECT_EQ(runner.retries_used("b"), 2);
  // Budget spent: the next check on the same block fails on first crash.
  out = runner.run_check("b", 1.1, [] { return feasible_place(); });
  EXPECT_EQ(out.error.attempts, 1);
  // Other blocks have their own budget; a fresh grant restores this one.
  out = runner.run_check("other", 1.0, [] { return feasible_place(); });
  EXPECT_EQ(out.error.attempts, 3);
  runner.grant_fresh_budget("b");
  out = runner.run_check("b", 1.2, [] { return feasible_place(); });
  EXPECT_EQ(out.error.attempts, 3);
}

TEST(ToolRunner, SpuriousInfeasibleFlipsTheVerdict) {
  ToolRunner runner(chaos_options(0.0, 0.0, 1.0));
  const auto out = runner.run_check("b", 1.0, [] { return feasible_place(); });
  ASSERT_TRUE(out.completed);
  EXPECT_FALSE(out.place.feasible);
  EXPECT_EQ(out.place.fail_reason, "injected: spurious infeasible verdict");
  EXPECT_EQ(runner.stats().spurious, 1);
  EXPECT_EQ(runner.stats().completed, 1);
}

TEST(ToolRunner, CleanRunPassesVerdictThrough) {
  ToolRunner runner(chaos_options(0.0, 0.0, 0.0));
  const auto out = runner.run_check("b", 1.0, [] { return feasible_place(); });
  ASSERT_TRUE(out.completed);
  EXPECT_TRUE(out.place.feasible);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(runner.stats().invocations, 1);
  EXPECT_EQ(runner.stats().retries, 0);
}

// -- CF-search option validation (satellite) --------------------------------

struct Prepared {
  Module module;
  ResourceReport report;
  ShapeReport shape;
};

Prepared prepared_module() {
  Rng rng(7);
  MixedParams p;
  p.luts = 80;
  p.ffs = 60;
  Prepared out{gen_mixed(p, rng), {}, {}};
  out.report = make_report(out.module.netlist);
  out.shape = quick_place(out.report);
  return out;
}

TEST(CfSearchValidation, FindMinCfRejectsContradictoryOptions) {
  const Device dev = xc7z020_model();
  const Prepared p = prepared_module();
  CfSearchOptions opts;
  opts.max_cf = opts.start - 0.1;  // empty range
  EXPECT_THROW(find_min_cf(p.module, p.report, p.shape, dev, opts),
               CheckError);
  CfSearchOptions bad_step;
  bad_step.step = 0.0;
  EXPECT_THROW(find_min_cf(p.module, p.report, p.shape, dev, bad_step),
               CheckError);
}

TEST(CfSearchValidation, SeededSearchFailsFastOnSeedAboveMax) {
  const Device dev = xc7z020_model();
  const Prepared p = prepared_module();
  const CfSearchOptions opts;  // max_cf = 3.0
  EXPECT_THROW(seeded_cf_search(p.module, p.report, p.shape, dev, 3.5, opts),
               CheckError);
  EXPECT_THROW(seeded_cf_search(p.module, p.report, p.shape, dev, 0.0, opts),
               CheckError);
  CfSearchOptions bad_step;
  bad_step.step = -0.02;
  EXPECT_THROW(seeded_cf_search(p.module, p.report, p.shape, dev, 1.0,
                                bad_step),
               CheckError);
}

TEST(CfSearchValidation, SearchAbortsWithStructuredErrorOnPersistentCrash) {
  const Device dev = xc7z020_model();
  const Prepared p = prepared_module();
  ToolRunner runner(chaos_options(1.0, 0.0, 0.0));
  CfSearchOptions opts;
  opts.runner = &runner;
  const SeededSearchResult r =
      seeded_cf_search(p.module, p.report, p.shape, dev, 1.5, opts);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.error.kind, FlowErrorKind::ToolCrash);
  EXPECT_EQ(r.error.block, p.module.name);
  EXPECT_EQ(r.tool_runs, 0);  // no check ever completed: no paper tool runs
}

// -- A/B: injection disabled is bit-identical to the plain flow -------------

TEST(FaultFlow, DisabledInjectionIsBitIdenticalOnSmallDesign) {
  const Device dev = xc7z020_model();
  const BlockDesign design = small_design();
  CfPolicy policy;
  policy.constant_cf = 1.8;
  const RwFlowResult plain = run_rw_flow(design, dev, policy, fast_opts());

  ToolRunner runner(chaos_options(0.0, 0.0, 0.0));  // enabled, all rates 0
  RwFlowOptions opts = fast_opts();
  opts.search.runner = &runner;
  const RwFlowResult wrapped = run_rw_flow(design, dev, policy, opts);

  ASSERT_EQ(wrapped.blocks.size(), plain.blocks.size());
  EXPECT_EQ(wrapped.total_tool_runs, plain.total_tool_runs);
  EXPECT_EQ(wrapped.failed_blocks, plain.failed_blocks);
  EXPECT_EQ(wrapped.degraded_blocks, 0);
  for (std::size_t i = 0; i < plain.blocks.size(); ++i) {
    EXPECT_EQ(wrapped.blocks[i].status, plain.blocks[i].status);
    EXPECT_DOUBLE_EQ(wrapped.blocks[i].macro.cf, plain.blocks[i].macro.cf);
    EXPECT_EQ(wrapped.blocks[i].macro.tool_runs,
              plain.blocks[i].macro.tool_runs);
    EXPECT_EQ(wrapped.blocks[i].macro.used_slices,
              plain.blocks[i].macro.used_slices);
  }
  EXPECT_DOUBLE_EQ(wrapped.stitch.cost, plain.stitch.cost);
  EXPECT_EQ(runner.stats().completed, wrapped.total_tool_runs);
  EXPECT_EQ(runner.stats().crashes, 0);
  EXPECT_EQ(runner.stats().retries, 0);
}

TEST(FaultFlow, DisabledInjectionIsBitIdenticalOnCnvW1A1) {
  // The acceptance A/B: placed-block counts, tool-run counts, and stitch
  // cost on the paper's application design must not move when the
  // fault-tolerant runtime is threaded through but injection is off.
  const Device dev = xc7z020_model();
  const CnvDesign design = build_cnv_w1a1();
  CfPolicy policy;
  policy.constant_cf = 1.5;
  const RwFlowResult plain = run_rw_flow(design, dev, policy, fast_opts());

  ToolRunner runner(chaos_options(0.0, 0.0, 0.0));
  RwFlowOptions opts = fast_opts();
  opts.search.runner = &runner;
  const RwFlowResult wrapped = run_rw_flow(design, dev, policy, opts);

  EXPECT_EQ(wrapped.total_tool_runs, plain.total_tool_runs);
  EXPECT_EQ(wrapped.failed_blocks, plain.failed_blocks);
  EXPECT_EQ(wrapped.problem.instances.size(), plain.problem.instances.size());
  EXPECT_EQ(wrapped.stitch.unplaced, plain.stitch.unplaced);
  EXPECT_DOUBLE_EQ(wrapped.stitch.cost, plain.stitch.cost);
  EXPECT_DOUBLE_EQ(wrapped.stitch.wirelength, plain.stitch.wirelength);
  ASSERT_EQ(wrapped.blocks.size(), plain.blocks.size());
  for (std::size_t i = 0; i < plain.blocks.size(); ++i) {
    EXPECT_DOUBLE_EQ(wrapped.blocks[i].macro.cf, plain.blocks[i].macro.cf);
  }
}

// -- Chaos: deterministic partial results under injection -------------------

RwFlowResult chaos_run(const BlockDesign& design, double rate,
                       std::uint64_t seed, ToolRunner& runner) {
  // Split the total failure rate across the three fault kinds.
  ToolRunnerOptions ro =
      chaos_options(0.4 * rate, 0.3 * rate, 0.3 * rate, seed);
  ro.retry.max_attempts_per_check = 4;
  ro.retry.retry_budget_per_block = 8;
  runner = ToolRunner(ro);
  RwFlowOptions opts = fast_opts();
  opts.search.runner = &runner;
  CfPolicy policy;
  policy.constant_cf = 1.8;
  return run_rw_flow(design, xc7z020_model(), policy, opts);
}

TEST(FaultFlow, ChaosIsDeterministicAndNeverThrows) {
  const BlockDesign design = small_design();
  for (const double rate : {0.1, 0.5}) {
    ToolRunner r1;
    ToolRunner r2;
    RwFlowResult a;
    RwFlowResult b;
    ASSERT_NO_THROW(a = chaos_run(design, rate, 0xdead, r1)) << rate;
    ASSERT_NO_THROW(b = chaos_run(design, rate, 0xdead, r2)) << rate;
    EXPECT_EQ(a.total_tool_runs, b.total_tool_runs);
    EXPECT_EQ(a.failed_blocks, b.failed_blocks);
    EXPECT_EQ(a.degraded_blocks, b.degraded_blocks);
    ASSERT_EQ(a.blocks.size(), b.blocks.size());
    for (std::size_t i = 0; i < a.blocks.size(); ++i) {
      EXPECT_EQ(a.blocks[i].status, b.blocks[i].status);
      EXPECT_EQ(a.blocks[i].attempts, b.blocks[i].attempts);
      EXPECT_DOUBLE_EQ(a.blocks[i].macro.cf, b.blocks[i].macro.cf);
    }
    EXPECT_EQ(r1.stats().invocations, r2.stats().invocations);
    EXPECT_EQ(r1.stats().crashes, r2.stats().crashes);
    EXPECT_EQ(r1.stats().timeouts, r2.stats().timeouts);
    EXPECT_EQ(r1.stats().spurious, r2.stats().spurious);
    EXPECT_EQ(r1.stats().retries, r2.stats().retries);
    EXPECT_DOUBLE_EQ(r1.stats().backoff_ms, r2.stats().backoff_ms);
  }
}

TEST(FaultFlow, ToolRunAccountingMatchesThePaperCountingRules) {
  // Every paper tool run is a completed feasibility check; crashed/timed-out
  // invocations are retried wall-clock but never counted as tool runs.
  const BlockDesign design = small_design();
  for (const double rate : {0.1, 0.5}) {
    ToolRunner runner;
    const RwFlowResult r = chaos_run(design, rate, 0xbeef, runner);
    EXPECT_EQ(runner.stats().completed, r.total_tool_runs) << rate;
    EXPECT_EQ(runner.stats().invocations,
              runner.stats().completed + runner.stats().crashes +
                  runner.stats().timeouts)
        << rate;
    EXPECT_GT(runner.stats().invocations, 0) << rate;
  }
}

TEST(FaultFlow, ChaosReturnsPartialResultsWithStructuredErrors) {
  const BlockDesign design = small_design();
  // Aggressive chaos with a starved retry budget forces real failures.
  ToolRunnerOptions ro = chaos_options(0.35, 0.1, 0.05, 0x5eed);
  ro.retry.max_attempts_per_check = 2;
  ro.retry.retry_budget_per_block = 1;
  ToolRunner runner(ro);
  RwFlowOptions opts = fast_opts();
  opts.search.runner = &runner;
  CfPolicy policy;
  policy.constant_cf = 1.8;
  RwFlowResult r;
  ASSERT_NO_THROW(r = run_rw_flow(small_design(), xc7z020_model(), policy,
                                  opts));
  ASSERT_EQ(r.blocks.size(), design.unique_modules.size());
  int failed = 0;
  for (const ImplementedBlock& blk : r.blocks) {
    if (blk.ok()) continue;
    ++failed;
    EXPECT_NE(blk.error.kind, FlowErrorKind::None);
    EXPECT_EQ(blk.error.block, blk.name);
    EXPECT_FALSE(to_string(blk.error).empty());
  }
  EXPECT_EQ(failed, r.failed_blocks);
  EXPECT_EQ(static_cast<int>(r.errors.size()), r.failed_blocks);
  // The stitch problem only carries implemented blocks.
  int usable = 0;
  for (const ImplementedBlock& blk : r.blocks) usable += blk.ok() ? 1 : 0;
  EXPECT_EQ(r.problem.macros.size(), static_cast<std::size_t>(usable));
}

TEST(FaultFlow, SpuriousVerdictsDegradeToEscalatedCf) {
  // Pure spurious-infeasible chaos: checks always complete, but half the
  // verdicts lie. Degradation must rescue blocks at the escalated CF rather
  // than failing the flow, and degraded blocks must reach the stitcher.
  ToolRunnerOptions ro = chaos_options(0.0, 0.0, 0.5, 0x51d);
  ToolRunner runner(ro);
  RwFlowOptions opts = fast_opts();
  opts.search.runner = &runner;
  CfPolicy policy;
  policy.constant_cf = 1.8;
  const RwFlowResult r =
      run_rw_flow(small_design(), xc7z020_model(), policy, opts);
  EXPECT_GT(runner.stats().spurious, 0);
  for (const ImplementedBlock& blk : r.blocks) {
    if (!blk.degraded()) continue;
    EXPECT_GE(blk.macro.cf, opts.degrade_cf - 1e-9);
    EXPECT_NE(blk.error.kind, FlowErrorKind::None);  // why it degraded
  }
  EXPECT_EQ(r.degraded_blocks,
            static_cast<int>(std::count_if(
                r.blocks.begin(), r.blocks.end(),
                [](const ImplementedBlock& b) { return b.degraded(); })));
}

// -- Checkpoint / resume ----------------------------------------------------

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    design_ = small_design();
    policy_.constant_cf = 1.8;
    original_ = cache_.run(design_, device_, policy_, fast_opts());
    ASSERT_EQ(original_.failed_blocks, 0);
    ASSERT_EQ(cache_.size(), 3u);
  }

  const Device device_ = xc7z020_model();
  BlockDesign design_;
  CfPolicy policy_;
  ModuleCache cache_;
  RwFlowResult original_;
};

TEST_F(CheckpointTest, RoundTripRestoresEveryMacro) {
  const std::string text = module_cache_to_text(cache_);
  ModuleCache reloaded;
  const CacheLoadStats stats = module_cache_from_text(text, reloaded);
  EXPECT_TRUE(stats.header_ok);
  EXPECT_TRUE(stats.complete);
  EXPECT_EQ(stats.loaded, 3);
  EXPECT_EQ(stats.corrupted, 0);
  ASSERT_EQ(reloaded.size(), cache_.size());
  for (const auto& [name, block] : cache_.entries()) {
    const ImplementedBlock* restored = reloaded.find(name);
    ASSERT_NE(restored, nullptr) << name;
    EXPECT_EQ(restored->status, block.status);
    EXPECT_DOUBLE_EQ(restored->macro.cf, block.macro.cf);
    EXPECT_DOUBLE_EQ(restored->macro.fill_ratio, block.macro.fill_ratio);
    EXPECT_EQ(restored->macro.tool_runs, block.macro.tool_runs);
    EXPECT_EQ(restored->macro.used_slices, block.macro.used_slices);
    EXPECT_TRUE(restored->macro.pblock == block.macro.pblock);
    EXPECT_EQ(restored->macro.footprint.kinds, block.macro.footprint.kinds);
    EXPECT_EQ(restored->macro.footprint.height, block.macro.footprint.height);
    EXPECT_DOUBLE_EQ(restored->seed_cf, block.seed_cf);
  }
}

TEST_F(CheckpointTest, ResumeAfterReloadRunsNothing) {
  // Pid-unique: this test also runs concurrently with itself under the
  // fault_parallel_jobs ctest entry.
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("mf_ckpt_resume_" + std::to_string(::getpid()) + ".txt"))
          .string();
  ASSERT_TRUE(save_module_cache(path, cache_));
  ModuleCache resumed;
  const CacheLoadStats stats = load_module_cache(path, resumed);
  std::remove(path.c_str());
  ASSERT_TRUE(stats.complete);
  const RwFlowResult r = resumed.run(design_, device_, policy_, fast_opts());
  EXPECT_EQ(resumed.hits(), 3);
  EXPECT_EQ(resumed.misses(), 0);
  EXPECT_EQ(r.total_tool_runs, 0);
  EXPECT_EQ(r.problem.instances.size(), original_.problem.instances.size());
}

TEST_F(CheckpointTest, CorruptedEntryIsDetectedAndOnlyThatBlockReruns) {
  std::string text = module_cache_to_text(cache_);
  // Flip the payload of block_b's entry; its checksum no longer matches.
  const std::size_t pos = text.find("\nblock_b ");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 7] = 'X';  // "block_b" -> "block_X"

  ModuleCache resumed;
  const CacheLoadStats stats = module_cache_from_text(text, resumed);
  EXPECT_TRUE(stats.header_ok);
  EXPECT_TRUE(stats.complete);  // every entry accounted for, one rejected
  EXPECT_EQ(stats.loaded, 2);
  EXPECT_EQ(stats.corrupted, 1);
  EXPECT_EQ(resumed.find("block_b"), nullptr);

  // Kill-and-resume: only the corrupted block re-runs.
  const RwFlowResult r = resumed.run(design_, device_, policy_, fast_opts());
  EXPECT_EQ(resumed.hits(), 2);
  EXPECT_EQ(resumed.misses(), 1);
  const ImplementedBlock* recompiled = resumed.find("block_b");
  ASSERT_NE(recompiled, nullptr);
  // Re-implementation is deterministic: the recompiled macro matches the
  // original bit-for-bit.
  const ImplementedBlock* first = cache_.find("block_b");
  ASSERT_NE(first, nullptr);
  EXPECT_DOUBLE_EQ(recompiled->macro.cf, first->macro.cf);
  EXPECT_TRUE(recompiled->macro.pblock == first->macro.pblock);
  EXPECT_EQ(recompiled->macro.used_slices, first->macro.used_slices);
  EXPECT_EQ(r.total_tool_runs, first->macro.tool_runs);
  EXPECT_EQ(r.problem.instances.size(), original_.problem.instances.size());
}

TEST_F(CheckpointTest, TruncatedCheckpointDropsTheTail) {
  const std::string text = module_cache_to_text(cache_);
  // Cut mid-way through the last entry: the partial line fails its checksum
  // and the footer is gone, so the load reports an incomplete file.
  const std::size_t pos = text.find("\nblock_c ");
  ASSERT_NE(pos, std::string::npos);
  const std::string truncated = text.substr(0, pos + 15);

  ModuleCache resumed;
  const CacheLoadStats stats = module_cache_from_text(truncated, resumed);
  EXPECT_TRUE(stats.header_ok);
  EXPECT_FALSE(stats.complete);
  EXPECT_EQ(stats.loaded, 2);
  EXPECT_EQ(stats.corrupted, 1);
  // The surviving entries still resume; the dropped one recompiles.
  const RwFlowResult r = resumed.run(design_, device_, policy_, fast_opts());
  EXPECT_EQ(resumed.misses(), 1);
  EXPECT_EQ(r.failed_blocks, 0);
}

TEST(Checkpoint, MissingFileAndWrongHeaderAreRejected) {
  ModuleCache cache;
  const CacheLoadStats missing = load_module_cache("/tmp/mf_no_such", cache);
  EXPECT_FALSE(missing.header_ok);
  const CacheLoadStats wrong = module_cache_from_text("bogus v9\n", cache);
  EXPECT_FALSE(wrong.header_ok);
  EXPECT_EQ(cache.size(), 0u);
}

// -- SA-stitcher watchdog ---------------------------------------------------

StitchProblem small_problem() {
  CfPolicy policy;
  policy.constant_cf = 1.8;
  RwFlowOptions opts = fast_opts();
  opts.run_stitch = false;
  RwFlowResult r = run_rw_flow(small_design(), xc7z020_model(), policy, opts);
  return std::move(r.problem);
}

TEST(StitchWatchdog, MoveBudgetDegradesToBestSnapshot) {
  const Device dev = xc7z020_model();
  const StitchProblem problem = small_problem();
  StitchOptions unbounded;
  unbounded.moves_per_temp = 100;
  unbounded.cooling = 0.8;
  const StitchResult full = stitch(dev, problem, unbounded);
  EXPECT_FALSE(full.watchdog_fired);

  StitchOptions budgeted = unbounded;
  budgeted.max_moves = 50;
  const StitchResult cut = stitch(dev, problem, budgeted);
  EXPECT_TRUE(cut.watchdog_fired);
  EXPECT_LE(cut.total_moves, 50);
  // Degraded, not broken: a complete placement state with a finite cost.
  EXPECT_EQ(cut.positions.size(), problem.instances.size());
  EXPECT_GE(cut.cost, full.cost - 1e-9);
  EXPECT_EQ(cut.unplaced, 0);  // final_fill still parks every block it can
}

TEST(StitchWatchdog, MoveBudgetIsDeterministic) {
  const Device dev = xc7z020_model();
  const StitchProblem problem = small_problem();
  StitchOptions opts;
  opts.moves_per_temp = 100;
  opts.cooling = 0.8;
  opts.max_moves = 120;
  const StitchResult a = stitch(dev, problem, opts);
  const StitchResult b = stitch(dev, problem, opts);
  EXPECT_TRUE(a.watchdog_fired);
  EXPECT_EQ(a.total_moves, b.total_moves);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
  EXPECT_DOUBLE_EQ(a.wirelength, b.wirelength);
}

TEST(StitchWatchdog, WallClockBudgetFires) {
  const Device dev = xc7z020_model();
  const StitchProblem problem = small_problem();
  StitchOptions opts;
  opts.moves_per_temp = 100;
  opts.cooling = 0.8;
  opts.max_seconds = 1e-9;  // expires immediately
  const StitchResult r = stitch(dev, problem, opts);
  EXPECT_TRUE(r.watchdog_fired);
  EXPECT_EQ(r.positions.size(), problem.instances.size());
}

}  // namespace
}  // namespace mf
